package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file holds the trainer-cluster messages (internal/cluster): the
// ownership map broadcast on every epoch change, the per-round routed
// ABW target updates exchanged between shard owners, and the
// vector-clock-keyed shard block deltas that keep every trainer's
// read-only mirror of remote shards fresh. All three follow the package
// conventions: fixed-layout big-endian, every length validated against a
// hard limit before allocation, trailing bytes rejected.

// OwnershipMap announces the shard → trainer assignment of one cluster
// epoch. The assignment is computed deterministically from the live
// roster (cluster.Assign), so concurrent failure detectors converge on
// the same map; the highest epoch wins.
type OwnershipMap struct {
	// From is the sending trainer's ID.
	From uint32
	// Epoch numbers the assignment; bumped on every handoff.
	Epoch uint64
	// Round is the sender's lockstep round at the epoch change.
	Round uint64
	// Owners maps shard → owning trainer ID (len == shard count).
	Owners []uint32
}

// RoutedUpdate carries the cross-shard ABW target updates (Algorithm 2,
// eq. 13) one trainer produced for shards another trainer owns during
// one lockstep round. A round's updates may be fragmented across frames
// (MaxRoutedUpdates each); Last marks the final frame. An empty frame
// with Last set is the round barrier marker trainers exchange even when
// no updates crossed their boundary.
type RoutedUpdate struct {
	// From is the sending trainer's ID.
	From uint32
	// Epoch is the ownership epoch the updates were routed under.
	Epoch uint64
	// Round is the lockstep round the updates belong to.
	Round uint64
	// Last marks the final frame of (From, Round).
	Last bool
	// Updates holds the routed tuples.
	Updates []Routed
}

// Routed is one routed target update: node Target's vⱼ moves against
// sender's batch-start uᵢ with scaled label X; K is the sample's index
// in the round batch (the deterministic apply-order tie-break).
type Routed struct {
	Target uint32
	Sender uint32
	K      uint32
	X      float64
}

// ClockEntry is one vector-clock component: trainer's counter at its
// incarnation (see cluster.Clock for the merge rules).
type ClockEntry struct {
	Trainer uint32
	Inc     uint32
	Counter uint64
}

// ClockDelta carries refreshed shard coordinate blocks from their owner,
// each keyed by the shard's full vector clock — the cluster analogue of
// Delta. Receivers merge the clock and install the block only when the
// clock advances their own (a restarted owner at a lower incarnation can
// never regress a shard).
type ClockDelta struct {
	// From is the sending trainer's ID.
	From uint32
	// Epoch is the ownership epoch the blocks were written under.
	Epoch uint64
	// Round is the lockstep round the blocks are current as of.
	Round uint64
	// N, Rank and Shards describe the store geometry.
	N      uint32
	Rank   uint16
	Shards uint16
	// Steps is the sender's training step counter.
	Steps uint64
	// Blocks holds the refreshed shards (at most Shards; per-frame float
	// budget MaxStateFloats, like Delta).
	Blocks []ClockBlock
}

// ClockBlock is one shard's coordinate rows together with its clock.
type ClockBlock struct {
	Shard uint16
	Clock []ClockEntry
	U, V  []float64
}

// AppendOwnershipMap appends the encoded message to buf and returns it.
func AppendOwnershipMap(buf []byte, m *OwnershipMap) ([]byte, error) {
	if len(m.Owners) == 0 || len(m.Owners) > MaxShards {
		return nil, fmt.Errorf("%w: ownership map over %d shards, want [1,%d]",
			ErrTooLarge, len(m.Owners), MaxShards)
	}
	buf = header(buf, TypeOwnershipMap)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Owners)))
	for _, o := range m.Owners {
		buf = binary.BigEndian.AppendUint32(buf, o)
	}
	return buf, nil
}

// DecodeOwnershipMap parses data into m, reusing m's slice capacity.
func DecodeOwnershipMap(data []byte, m *OwnershipMap) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeOwnershipMap {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeOwnershipMap)
	}
	p := data[3:]
	if len(p) < 4+8+8+2 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Epoch = binary.BigEndian.Uint64(p[4:])
	m.Round = binary.BigEndian.Uint64(p[12:])
	count := int(binary.BigEndian.Uint16(p[20:]))
	if count == 0 || count > MaxShards {
		return ErrTooLarge
	}
	p = p[22:]
	if len(p) != 4*count {
		return ErrTruncated
	}
	if cap(m.Owners) < count {
		m.Owners = make([]uint32, count)
	} else {
		m.Owners = m.Owners[:count]
	}
	for i := 0; i < count; i++ {
		m.Owners[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	return nil
}

// AppendRoutedUpdate appends the encoded message to buf and returns it.
func AppendRoutedUpdate(buf []byte, m *RoutedUpdate) ([]byte, error) {
	if len(m.Updates) > MaxRoutedUpdates {
		return nil, fmt.Errorf("%w: %d routed updates in one frame, max %d",
			ErrTooLarge, len(m.Updates), MaxRoutedUpdates)
	}
	for _, u := range m.Updates {
		if u.Target >= MaxNodes || u.Sender >= MaxNodes {
			return nil, fmt.Errorf("%w: routed node id out of [0,%d)", ErrTooLarge, MaxNodes)
		}
	}
	buf = header(buf, TypeRoutedUpdate)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	last := byte(0)
	if m.Last {
		last = 1
	}
	buf = append(buf, last)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Updates)))
	for _, u := range m.Updates {
		buf = binary.BigEndian.AppendUint32(buf, u.Target)
		buf = binary.BigEndian.AppendUint32(buf, u.Sender)
		buf = binary.BigEndian.AppendUint32(buf, u.K)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(u.X))
	}
	return buf, nil
}

// DecodeRoutedUpdate parses data into m, reusing m's slice capacity.
func DecodeRoutedUpdate(data []byte, m *RoutedUpdate) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeRoutedUpdate {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeRoutedUpdate)
	}
	p := data[3:]
	if len(p) < 4+8+8+1+4 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Epoch = binary.BigEndian.Uint64(p[4:])
	m.Round = binary.BigEndian.Uint64(p[12:])
	switch p[20] {
	case 0:
		m.Last = false
	case 1:
		m.Last = true
	default:
		return fmt.Errorf("%w: routed update last flag %d", ErrBadType, p[20])
	}
	count := int(binary.BigEndian.Uint32(p[21:]))
	if count > MaxRoutedUpdates {
		return ErrTooLarge
	}
	p = p[25:]
	if len(p) != 20*count {
		return ErrTruncated
	}
	if cap(m.Updates) < count {
		m.Updates = make([]Routed, count)
	} else {
		m.Updates = m.Updates[:count]
	}
	for i := 0; i < count; i++ {
		q := p[20*i:]
		u := &m.Updates[i]
		u.Target = binary.BigEndian.Uint32(q)
		u.Sender = binary.BigEndian.Uint32(q[4:])
		u.K = binary.BigEndian.Uint32(q[8:])
		u.X = math.Float64frombits(binary.BigEndian.Uint64(q[12:]))
		if u.Target >= MaxNodes || u.Sender >= MaxNodes {
			return fmt.Errorf("%w: routed node id out of [0,%d)", ErrTooLarge, MaxNodes)
		}
	}
	return nil
}

// AppendClockDelta appends the encoded message to buf and returns it.
// Block vector lengths must match the declared geometry and the frame's
// total per-side floats must fit the MaxStateFloats budget.
func AppendClockDelta(buf []byte, m *ClockDelta) ([]byte, error) {
	if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
		return nil, err
	}
	if len(m.Blocks) > int(m.Shards) {
		return nil, ErrTooLarge
	}
	total := uint64(0)
	for _, b := range m.Blocks {
		if b.Shard >= m.Shards {
			return nil, fmt.Errorf("wire: clock block for shard %d of %d", b.Shard, m.Shards)
		}
		if len(b.Clock) == 0 || len(b.Clock) > MaxTrainers {
			return nil, fmt.Errorf("%w: clock with %d entries, want [1,%d]",
				ErrTooLarge, len(b.Clock), MaxTrainers)
		}
		want := ShardNodes(int(m.N), int(b.Shard), int(m.Shards)) * int(m.Rank)
		if len(b.U) != want || len(b.V) != want {
			return nil, fmt.Errorf("wire: clock block shard %d rows %d/%d, want %d",
				b.Shard, len(b.U), len(b.V), want)
		}
		if total += uint64(want); total > MaxStateFloats {
			return nil, fmt.Errorf("%w: clock delta frame carries %d floats, budget %d",
				ErrTooLarge, total, uint64(MaxStateFloats))
		}
	}
	buf = header(buf, TypeClockDelta)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Round)
	buf = binary.BigEndian.AppendUint32(buf, m.N)
	buf = binary.BigEndian.AppendUint16(buf, m.Rank)
	buf = binary.BigEndian.AppendUint16(buf, m.Shards)
	buf = binary.BigEndian.AppendUint64(buf, m.Steps)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = binary.BigEndian.AppendUint16(buf, b.Shard)
		buf = append(buf, byte(len(b.Clock)))
		for _, e := range b.Clock {
			buf = binary.BigEndian.AppendUint32(buf, e.Trainer)
			buf = binary.BigEndian.AppendUint32(buf, e.Inc)
			buf = binary.BigEndian.AppendUint64(buf, e.Counter)
		}
		for _, x := range b.U {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
		}
		for _, x := range b.V {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return buf, nil
}

// DecodeClockDelta parses data into m. Like DecodeDelta, block lengths
// are implied by the declared geometry and validated against the
// remaining input before any allocation.
func DecodeClockDelta(data []byte, m *ClockDelta) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeClockDelta {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeClockDelta)
	}
	p := data[3:]
	if len(p) < 4+8+8+4+2+2+8+2 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Epoch = binary.BigEndian.Uint64(p[4:])
	m.Round = binary.BigEndian.Uint64(p[12:])
	m.N = binary.BigEndian.Uint32(p[20:])
	m.Rank = binary.BigEndian.Uint16(p[24:])
	m.Shards = binary.BigEndian.Uint16(p[26:])
	m.Steps = binary.BigEndian.Uint64(p[28:])
	if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
		return err
	}
	count := int(binary.BigEndian.Uint16(p[36:]))
	if count > int(m.Shards) {
		return ErrTooLarge
	}
	p = p[38:]
	m.Blocks = m.Blocks[:0]
	total := uint64(0)
	for i := 0; i < count; i++ {
		if len(p) < 2+1 {
			return ErrTruncated
		}
		var b ClockBlock
		b.Shard = binary.BigEndian.Uint16(p)
		entries := int(p[2])
		p = p[3:]
		if b.Shard >= m.Shards {
			return fmt.Errorf("wire: clock block for shard %d of %d", b.Shard, m.Shards)
		}
		if entries == 0 || entries > MaxTrainers {
			return fmt.Errorf("%w: clock with %d entries, want [1,%d]",
				ErrTooLarge, entries, MaxTrainers)
		}
		if len(p) < 16*entries {
			return ErrTruncated
		}
		b.Clock = make([]ClockEntry, entries)
		for k := 0; k < entries; k++ {
			q := p[16*k:]
			b.Clock[k] = ClockEntry{
				Trainer: binary.BigEndian.Uint32(q),
				Inc:     binary.BigEndian.Uint32(q[4:]),
				Counter: binary.BigEndian.Uint64(q[8:]),
			}
		}
		p = p[16*entries:]
		want := ShardNodes(int(m.N), int(b.Shard), int(m.Shards)) * int(m.Rank)
		if total += uint64(want); total > MaxStateFloats {
			return fmt.Errorf("%w: clock delta frame carries %d floats, budget %d",
				ErrTooLarge, total, uint64(MaxStateFloats))
		}
		if len(p) < 2*8*want {
			return ErrTruncated
		}
		b.U = make([]float64, want)
		b.V = make([]float64, want)
		for k := 0; k < want; k++ {
			b.U[k] = math.Float64frombits(binary.BigEndian.Uint64(p[8*k:]))
		}
		p = p[8*want:]
		for k := 0; k < want; k++ {
			b.V[k] = math.Float64frombits(binary.BigEndian.Uint64(p[8*k:]))
		}
		p = p[8*want:]
		m.Blocks = append(m.Blocks, b)
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in clock delta", len(p))
	}
	return nil
}
