package wire

import (
	"errors"
	"reflect"
	"testing"
)

func clockDeltaFixture() *ClockDelta {
	return &ClockDelta{
		From: 1, Epoch: 3, Round: 99,
		N: 5, Rank: 2, Shards: 2, Steps: 4242,
		Blocks: []ClockBlock{
			{Shard: 0, // nodes 0,2,4 → 3 rows
				Clock: []ClockEntry{{Trainer: 0, Inc: 1, Counter: 17}, {Trainer: 1, Inc: 2, Counter: 4}},
				U:     []float64{1, 2, 3, 4, 5, 6},
				V:     []float64{-1, -2, -3, -4, -5, -6}},
			{Shard: 1, // nodes 1,3 → 2 rows
				Clock: []ClockEntry{{Trainer: 1, Inc: 2, Counter: 9}},
				U:     []float64{0.5, 0.25, 0.125, 0},
				V:     []float64{9, 8, 7, 6}},
		},
	}
}

func TestOwnershipMapRoundTrip(t *testing.T) {
	in := &OwnershipMap{From: 2, Epoch: 7, Round: 1234, Owners: []uint32{0, 1, 1, 0, 2}}
	buf, err := AppendOwnershipMap(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out OwnershipMap
	if err := DecodeOwnershipMap(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestOwnershipMapValidation(t *testing.T) {
	if _, err := AppendOwnershipMap(nil, &OwnershipMap{From: 1}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty map: got %v, want ErrTooLarge", err)
	}
	if _, err := AppendOwnershipMap(nil, &OwnershipMap{Owners: make([]uint32, MaxShards+1)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized map: got %v, want ErrTooLarge", err)
	}
	good, err := AppendOwnershipMap(nil, &OwnershipMap{From: 1, Owners: []uint32{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var out OwnershipMap
	for cut := 0; cut < len(good); cut++ {
		if err := DecodeOwnershipMap(good[:cut], &out); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if err := DecodeOwnershipMap(append(append([]byte(nil), good...), 0), &out); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRoutedUpdateRoundTrip(t *testing.T) {
	for _, in := range []*RoutedUpdate{
		{From: 3, Epoch: 1, Round: 5, Last: true,
			Updates: []Routed{{Target: 4, Sender: 0, K: 2, X: 1}, {Target: 1, Sender: 2, K: 0, X: -1}}},
		{From: 0, Epoch: 1, Round: 0, Last: true}, // barrier marker: no updates
		{From: 9, Epoch: 2, Round: 7, Last: false,
			Updates: []Routed{{Target: 0, Sender: 1, K: 3, X: 0.5}}},
	} {
		buf, err := AppendRoutedUpdate(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		var out RoutedUpdate
		if err := DecodeRoutedUpdate(buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.From != in.From || out.Epoch != in.Epoch || out.Round != in.Round ||
			out.Last != in.Last || !reflect.DeepEqual(out.Updates, in.Updates) {
			t.Errorf("round trip: %+v != %+v", out, in)
		}
	}
}

func TestRoutedUpdateValidation(t *testing.T) {
	if _, err := AppendRoutedUpdate(nil, &RoutedUpdate{
		Updates: []Routed{{Target: MaxNodes, Sender: 0}},
	}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized target id: got %v, want ErrTooLarge", err)
	}
	if _, err := AppendRoutedUpdate(nil, &RoutedUpdate{
		Updates: make([]Routed, MaxRoutedUpdates+1),
	}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized frame: got %v, want ErrTooLarge", err)
	}
	good, err := AppendRoutedUpdate(nil, &RoutedUpdate{
		From: 1, Round: 2, Last: true, Updates: []Routed{{Target: 1, Sender: 2, K: 0, X: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out RoutedUpdate
	for cut := 0; cut < len(good); cut++ {
		if err := DecodeRoutedUpdate(good[:cut], &out); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// A bad last-flag byte is rejected (offset: header 3 + from 4 +
	// epoch 8 + round 8 = 23).
	bad := append([]byte(nil), good...)
	bad[23] = 7
	if err := DecodeRoutedUpdate(bad, &out); !errors.Is(err, ErrBadType) {
		t.Errorf("bad last flag: got %v, want ErrBadType", err)
	}
}

func TestClockDeltaRoundTrip(t *testing.T) {
	in := clockDeltaFixture()
	buf, err := AppendClockDelta(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out ClockDelta
	if err := DecodeClockDelta(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestClockDeltaValidation(t *testing.T) {
	d := clockDeltaFixture()
	d.Blocks[0].Clock = nil
	if _, err := AppendClockDelta(nil, d); !errors.Is(err, ErrTooLarge) {
		t.Errorf("clockless block: got %v, want ErrTooLarge", err)
	}
	d = clockDeltaFixture()
	d.Blocks[0].Clock = make([]ClockEntry, MaxTrainers+1)
	if _, err := AppendClockDelta(nil, d); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized clock: got %v, want ErrTooLarge", err)
	}
	d = clockDeltaFixture()
	d.Blocks[1].U = d.Blocks[1].U[:1]
	if _, err := AppendClockDelta(nil, d); err == nil {
		t.Error("mis-sized block accepted")
	}
	d = clockDeltaFixture()
	d.Blocks[1].Shard = 9
	if _, err := AppendClockDelta(nil, d); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	good, err := AppendClockDelta(nil, clockDeltaFixture())
	if err != nil {
		t.Fatal(err)
	}
	var out ClockDelta
	for cut := 0; cut < len(good); cut++ {
		if err := DecodeClockDelta(good[:cut], &out); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if err := DecodeClockDelta(append(append([]byte(nil), good...), 0xAB), &out); err == nil {
		t.Error("trailing byte accepted")
	}
}
