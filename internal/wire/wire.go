// Package wire defines the binary message format spoken by DMFSGD nodes
// over any transport (in-memory or UDP).
//
// The protocol carries exactly what Algorithms 1 and 2 of the paper
// exchange, nothing more:
//
//	RTT (Algorithm 1):
//	  i → j : ProbeRequest{Seq, From}            (the ping)
//	  j → i : ProbeReply{Seq, From, Uj, Vj}      (coordinates piggybacked)
//	  node i measures the RTT itself and updates uᵢ, vᵢ.
//
//	ABW (Algorithm 2):
//	  i → j : ProbeRequest{Seq, From, Rate, Ui}  (UDP train at rate τ, with uᵢ)
//	  j → i : ProbeReply{Seq, From, Class, Vj}   (inferred class + vⱼ)
//	  node j updates vⱼ; node i updates uᵢ on receipt.
//
//	Membership (UDP deployments):
//	  Join{From, Addr} announces a node; Peers{Addrs} shares known peers.
//
// Encoding is fixed-layout big-endian with a two-byte (magic, version)
// header and a type byte. Decoders validate every length against hard
// limits before allocating, so a malformed or malicious datagram cannot
// cause large allocations or panics — it yields an error.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol constants.
const (
	// Magic is the first byte of every message.
	Magic = 0xD3
	// Version is the protocol version byte.
	Version = 1

	// MaxRank bounds coordinate vector lengths accepted from the network.
	MaxRank = 512
	// MaxAddrLen bounds address string lengths.
	MaxAddrLen = 256
	// MaxPeers bounds the number of addresses in a Peers message.
	MaxPeers = 64
)

// MsgType identifies the message kind.
type MsgType uint8

// Message kinds.
const (
	TypeProbeRequest MsgType = 1
	TypeProbeReply   MsgType = 2
	TypeJoin         MsgType = 3
	TypePeers        MsgType = 4
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeProbeRequest:
		return "probe-request"
	case TypeProbeReply:
		return "probe-reply"
	case TypeJoin:
		return "join"
	case TypePeers:
		return "peers"
	default:
		return fmt.Sprintf("wire.MsgType(%d)", uint8(t))
	}
}

// Errors returned by decoders.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadMagic   = errors.New("wire: bad magic byte")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTooLarge   = errors.New("wire: field exceeds protocol limit")
)

// ProbeRequest initiates a measurement exchange.
type ProbeRequest struct {
	// Seq matches replies to requests.
	Seq uint32
	// From is the sender's node ID.
	From uint32
	// Rate is the ABW probe rate τ in Mbit/s; 0 for RTT probes.
	Rate float64
	// SenderU carries uᵢ for ABW probes (Algorithm 2 step 1); empty for RTT.
	SenderU []float64
}

// ProbeReply answers a ProbeRequest.
type ProbeReply struct {
	// Seq echoes the request's sequence number.
	Seq uint32
	// From is the responder's node ID.
	From uint32
	// Class is the class inferred by an ABW target (+1/−1); 0 for RTT
	// replies, where the sender infers the measurement itself.
	Class int8
	// U and V are the responder's coordinates. RTT replies carry both
	// (Algorithm 1 step 2); ABW replies carry V and leave U empty
	// (Algorithm 2 step 3).
	U []float64
	V []float64
}

// Join announces a node to a bootstrap peer.
type Join struct {
	// From is the joining node's ID.
	From uint32
	// Addr is the joining node's listen address.
	Addr string
}

// Peers shares known peer addresses in response to a Join.
type Peers struct {
	// Addrs lists peer addresses (at most MaxPeers).
	Addrs []string
}

// header appends the common prefix.
func header(buf []byte, t MsgType) []byte {
	return append(buf, Magic, Version, byte(t))
}

// PeekType returns the message type without fully decoding, validating the
// header. Receivers dispatch on it.
func PeekType(data []byte) (MsgType, error) {
	if len(data) < 3 {
		return 0, ErrTruncated
	}
	if data[0] != Magic {
		return 0, ErrBadMagic
	}
	if data[1] != Version {
		return 0, ErrBadVersion
	}
	t := MsgType(data[2])
	switch t {
	case TypeProbeRequest, TypeProbeReply, TypeJoin, TypePeers:
		return t, nil
	}
	return 0, ErrBadType
}

// AppendProbeRequest appends the encoded message to buf and returns it.
func AppendProbeRequest(buf []byte, m *ProbeRequest) ([]byte, error) {
	if len(m.SenderU) > MaxRank {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeProbeRequest)
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Rate))
	buf = appendVector(buf, m.SenderU)
	return buf, nil
}

// DecodeProbeRequest parses data into m, reusing m's vector capacity.
func DecodeProbeRequest(data []byte, m *ProbeRequest) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeProbeRequest {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeProbeRequest)
	}
	p := data[3:]
	if len(p) < 4+4+8 {
		return ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint32(p)
	m.From = binary.BigEndian.Uint32(p[4:])
	m.Rate = math.Float64frombits(binary.BigEndian.Uint64(p[8:]))
	m.SenderU, p, err = decodeVector(p[16:], m.SenderU)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in probe request", len(p))
	}
	return nil
}

// AppendProbeReply appends the encoded message to buf and returns it.
func AppendProbeReply(buf []byte, m *ProbeReply) ([]byte, error) {
	if len(m.U) > MaxRank || len(m.V) > MaxRank {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeProbeReply)
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = append(buf, byte(m.Class))
	buf = appendVector(buf, m.U)
	buf = appendVector(buf, m.V)
	return buf, nil
}

// DecodeProbeReply parses data into m, reusing m's vector capacities.
func DecodeProbeReply(data []byte, m *ProbeReply) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeProbeReply {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeProbeReply)
	}
	p := data[3:]
	if len(p) < 4+4+1 {
		return ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint32(p)
	m.From = binary.BigEndian.Uint32(p[4:])
	m.Class = int8(p[8])
	m.U, p, err = decodeVector(p[9:], m.U)
	if err != nil {
		return err
	}
	m.V, p, err = decodeVector(p, m.V)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in probe reply", len(p))
	}
	return nil
}

// AppendJoin appends the encoded message to buf and returns it.
func AppendJoin(buf []byte, m *Join) ([]byte, error) {
	if len(m.Addr) > MaxAddrLen {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeJoin)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Addr)))
	buf = append(buf, m.Addr...)
	return buf, nil
}

// DecodeJoin parses data into m.
func DecodeJoin(data []byte, m *Join) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeJoin {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeJoin)
	}
	p := data[3:]
	if len(p) < 6 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	n := int(binary.BigEndian.Uint16(p[4:]))
	if n > MaxAddrLen {
		return ErrTooLarge
	}
	p = p[6:]
	if len(p) != n {
		return ErrTruncated
	}
	m.Addr = string(p)
	return nil
}

// AppendPeers appends the encoded message to buf and returns it.
func AppendPeers(buf []byte, m *Peers) ([]byte, error) {
	if len(m.Addrs) > MaxPeers {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypePeers)
	buf = append(buf, byte(len(m.Addrs)))
	for _, a := range m.Addrs {
		if len(a) > MaxAddrLen {
			return nil, ErrTooLarge
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	return buf, nil
}

// DecodePeers parses data into m.
func DecodePeers(data []byte, m *Peers) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypePeers {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypePeers)
	}
	p := data[3:]
	if len(p) < 1 {
		return ErrTruncated
	}
	n := int(p[0])
	if n > MaxPeers {
		return ErrTooLarge
	}
	p = p[1:]
	m.Addrs = m.Addrs[:0]
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return ErrTruncated
		}
		l := int(binary.BigEndian.Uint16(p))
		if l > MaxAddrLen {
			return ErrTooLarge
		}
		p = p[2:]
		if len(p) < l {
			return ErrTruncated
		}
		m.Addrs = append(m.Addrs, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in peers", len(p))
	}
	return nil
}

// appendVector encodes a float64 slice as uint16 length + big-endian bits.
func appendVector(buf []byte, v []float64) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(v)))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// decodeVector parses a vector into dst (reusing capacity) and returns the
// remaining bytes.
func decodeVector(p []byte, dst []float64) ([]float64, []byte, error) {
	if len(p) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(p))
	if n > MaxRank {
		return nil, nil, ErrTooLarge
	}
	p = p[2:]
	if len(p) < 8*n {
		return nil, nil, ErrTruncated
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(p[8*i:]))
	}
	return dst, p[8*n:], nil
}
