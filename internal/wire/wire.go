// Package wire defines the binary message format spoken by DMFSGD nodes
// over any transport (in-memory or UDP).
//
// The protocol carries exactly what Algorithms 1 and 2 of the paper
// exchange, nothing more:
//
//	RTT (Algorithm 1):
//	  i → j : ProbeRequest{Seq, From}            (the ping)
//	  j → i : ProbeReply{Seq, From, Uj, Vj}      (coordinates piggybacked)
//	  node i measures the RTT itself and updates uᵢ, vᵢ.
//
//	ABW (Algorithm 2):
//	  i → j : ProbeRequest{Seq, From, Rate, Ui}  (UDP train at rate τ, with uᵢ)
//	  j → i : ProbeReply{Seq, From, Class, Vj}   (inferred class + vⱼ)
//	  node j updates vⱼ; node i updates uᵢ on receipt.
//
//	Membership (UDP deployments):
//	  Join{From, Addr} announces a node; Peers{Addrs} shares known peers.
//
//	Replication (dmfserve replicas, internal/replica):
//	  VersionVec{Inc, Vers}   advertises per-shard snapshot versions (push)
//	  DeltaRequest{Shards}    pulls the listed stale shards
//	  Delta{Inc, Blocks}      carries the refreshed shard coordinate blocks
//
//	Trainer cluster (internal/cluster):
//	  OwnershipMap{Epoch, Owners}  shard → owning trainer, per epoch
//	  RoutedUpdate{Round, Updates} cross-trainer ABW target updates
//	  ClockDelta{Blocks}           vector-clock-keyed shard coordinate blocks
//
// Encoding is fixed-layout big-endian with a two-byte (magic, version)
// header and a type byte. Decoders validate every length against hard
// limits before allocating, so a malformed or malicious datagram cannot
// cause large allocations or panics — it yields an error. Coordinate
// blocks additionally validate against the geometry (n, rank, shards)
// declared in the same message, and never allocate more than the input
// holds.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Protocol constants.
const (
	// Magic is the first byte of every message.
	Magic = 0xD3
	// Version is the protocol version byte.
	Version = 1

	// MaxRank bounds coordinate vector lengths accepted from the network.
	MaxRank = 512
	// MaxAddrLen bounds address string lengths.
	MaxAddrLen = 256
	// MaxPeers bounds the number of addresses in a Peers message.
	MaxPeers = 64
	// MaxShards bounds the shard counts accepted in replication messages.
	MaxShards = 4096
	// MaxNodes bounds the node counts accepted in replication messages.
	MaxNodes = 1 << 20
	// MaxStateFloats bounds the per-side coordinate floats carried by one
	// Delta or ClockDelta frame (Σ over its blocks of the shard's
	// rows·rank), so a frame (16·MaxStateFloats coordinate bytes plus
	// small headers, ≤ ~32 MiB) always fits one transport frame
	// (transport.MaxFrame, 64 MiB). States larger than one frame
	// replicate chunked: the sender splits the shard set across as many
	// frames as the budget requires (replica.State.DeltasFor).
	MaxStateFloats = 1 << 21
	// MaxTrainers bounds the vector-clock entries per shard block and the
	// trainer count an OwnershipMap may name.
	MaxTrainers = 64
	// MaxRoutedUpdates bounds the update tuples one RoutedUpdate frame
	// carries; larger batches are fragmented (Last marks the final frame
	// of a round).
	MaxRoutedUpdates = 1 << 16
)

// MsgType identifies the message kind.
type MsgType uint8

// Message kinds.
const (
	TypeProbeRequest MsgType = 1
	TypeProbeReply   MsgType = 2
	TypeJoin         MsgType = 3
	TypePeers        MsgType = 4
	TypeVersionVec   MsgType = 5
	TypeDeltaRequest MsgType = 6
	TypeDelta        MsgType = 7
	TypeOwnershipMap MsgType = 8
	TypeRoutedUpdate MsgType = 9
	TypeClockDelta   MsgType = 10
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeProbeRequest:
		return "probe-request"
	case TypeProbeReply:
		return "probe-reply"
	case TypeJoin:
		return "join"
	case TypePeers:
		return "peers"
	case TypeVersionVec:
		return "version-vec"
	case TypeDeltaRequest:
		return "delta-request"
	case TypeDelta:
		return "delta"
	case TypeOwnershipMap:
		return "ownership-map"
	case TypeRoutedUpdate:
		return "routed-update"
	case TypeClockDelta:
		return "clock-delta"
	default:
		return fmt.Sprintf("wire.MsgType(%d)", uint8(t))
	}
}

// Errors returned by decoders.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadMagic   = errors.New("wire: bad magic byte")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown message type")
	ErrTooLarge   = errors.New("wire: field exceeds protocol limit")
)

// ProbeRequest initiates a measurement exchange.
type ProbeRequest struct {
	// Seq matches replies to requests.
	Seq uint32
	// From is the sender's node ID.
	From uint32
	// Rate is the ABW probe rate τ in Mbit/s; 0 for RTT probes.
	Rate float64
	// SenderU carries uᵢ for ABW probes (Algorithm 2 step 1); empty for RTT.
	SenderU []float64
}

// ProbeReply answers a ProbeRequest.
type ProbeReply struct {
	// Seq echoes the request's sequence number.
	Seq uint32
	// From is the responder's node ID.
	From uint32
	// Class is the class inferred by an ABW target (+1/−1); 0 for RTT
	// replies, where the sender infers the measurement itself.
	Class int8
	// U and V are the responder's coordinates. RTT replies carry both
	// (Algorithm 1 step 2); ABW replies carry V and leave U empty
	// (Algorithm 2 step 3).
	U []float64
	V []float64
}

// Join announces a node to a bootstrap peer.
type Join struct {
	// From is the joining node's ID.
	From uint32
	// Addr is the joining node's listen address.
	Addr string
}

// Peers shares known peer addresses in response to a Join.
type Peers struct {
	// Addrs lists peer addresses (at most MaxPeers).
	Addrs []string
}

// header appends the common prefix.
func header(buf []byte, t MsgType) []byte {
	return append(buf, Magic, Version, byte(t))
}

// PeekType returns the message type without fully decoding, validating the
// header. Receivers dispatch on it.
func PeekType(data []byte) (MsgType, error) {
	if len(data) < 3 {
		return 0, ErrTruncated
	}
	if data[0] != Magic {
		return 0, ErrBadMagic
	}
	if data[1] != Version {
		return 0, ErrBadVersion
	}
	t := MsgType(data[2])
	switch t {
	case TypeProbeRequest, TypeProbeReply, TypeJoin, TypePeers,
		TypeVersionVec, TypeDeltaRequest, TypeDelta,
		TypeOwnershipMap, TypeRoutedUpdate, TypeClockDelta:
		return t, nil
	}
	return 0, ErrBadType
}

// AppendProbeRequest appends the encoded message to buf and returns it.
func AppendProbeRequest(buf []byte, m *ProbeRequest) ([]byte, error) {
	if len(m.SenderU) > MaxRank {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeProbeRequest)
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Rate))
	buf = appendVector(buf, m.SenderU)
	return buf, nil
}

// DecodeProbeRequest parses data into m, reusing m's vector capacity.
func DecodeProbeRequest(data []byte, m *ProbeRequest) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeProbeRequest {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeProbeRequest)
	}
	p := data[3:]
	if len(p) < 4+4+8 {
		return ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint32(p)
	m.From = binary.BigEndian.Uint32(p[4:])
	m.Rate = math.Float64frombits(binary.BigEndian.Uint64(p[8:]))
	m.SenderU, p, err = decodeVector(p[16:], m.SenderU)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in probe request", len(p))
	}
	return nil
}

// AppendProbeReply appends the encoded message to buf and returns it.
func AppendProbeReply(buf []byte, m *ProbeReply) ([]byte, error) {
	if len(m.U) > MaxRank || len(m.V) > MaxRank {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeProbeReply)
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = append(buf, byte(m.Class))
	buf = appendVector(buf, m.U)
	buf = appendVector(buf, m.V)
	return buf, nil
}

// DecodeProbeReply parses data into m, reusing m's vector capacities.
func DecodeProbeReply(data []byte, m *ProbeReply) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeProbeReply {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeProbeReply)
	}
	p := data[3:]
	if len(p) < 4+4+1 {
		return ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint32(p)
	m.From = binary.BigEndian.Uint32(p[4:])
	m.Class = int8(p[8])
	m.U, p, err = decodeVector(p[9:], m.U)
	if err != nil {
		return err
	}
	m.V, p, err = decodeVector(p, m.V)
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in probe reply", len(p))
	}
	return nil
}

// AppendJoin appends the encoded message to buf and returns it.
func AppendJoin(buf []byte, m *Join) ([]byte, error) {
	if len(m.Addr) > MaxAddrLen {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeJoin)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Addr)))
	buf = append(buf, m.Addr...)
	return buf, nil
}

// DecodeJoin parses data into m.
func DecodeJoin(data []byte, m *Join) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeJoin {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeJoin)
	}
	p := data[3:]
	if len(p) < 6 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	n := int(binary.BigEndian.Uint16(p[4:]))
	if n > MaxAddrLen {
		return ErrTooLarge
	}
	p = p[6:]
	if len(p) != n {
		return ErrTruncated
	}
	m.Addr = string(p)
	return nil
}

// AppendPeers appends the encoded message to buf and returns it.
func AppendPeers(buf []byte, m *Peers) ([]byte, error) {
	if len(m.Addrs) > MaxPeers {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypePeers)
	buf = append(buf, byte(len(m.Addrs)))
	for _, a := range m.Addrs {
		if len(a) > MaxAddrLen {
			return nil, ErrTooLarge
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	return buf, nil
}

// DecodePeers parses data into m.
func DecodePeers(data []byte, m *Peers) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypePeers {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypePeers)
	}
	p := data[3:]
	if len(p) < 1 {
		return ErrTruncated
	}
	n := int(p[0])
	if n > MaxPeers {
		return ErrTooLarge
	}
	p = p[1:]
	m.Addrs = m.Addrs[:0]
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return ErrTruncated
		}
		l := int(binary.BigEndian.Uint16(p))
		if l > MaxAddrLen {
			return ErrTooLarge
		}
		p = p[2:]
		if len(p) < l {
			return ErrTruncated
		}
		m.Addrs = append(m.Addrs, string(p[:l]))
		p = p[l:]
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in peers", len(p))
	}
	return nil
}

// ShardNodes returns the number of nodes owned by shard under the store's
// node→shard assignment (node i → shard i mod shards) — the row count the
// shard's coordinate block must carry. Replication decoders validate block
// lengths against it.
func ShardNodes(n, shard, shards int) int { return (n - shard + shards - 1) / shards }

// VersionVec advertises a replica's per-shard snapshot versions — the push
// half of the anti-entropy exchange. A replica that has no state yet (a
// cold follower) announces itself with N = 0 and an empty vector.
type VersionVec struct {
	// From is the sending replica's ID.
	From uint32
	// Inc is the sender's incarnation: bumped on every restart (from its
	// checkpoint when it has one), it lets receivers distinguish a fresh
	// lineage with legitimately lower versions from a stale replay. 0
	// means "first life" (and is what pre-incarnation senders emit).
	Inc uint32
	// Addr is the sender's gossip listen address, so receivers can reply
	// over transports whose observed source is not a listen address (TCP).
	// Empty means "reply to the observed source".
	Addr string
	// N, Rank and Shards describe the snapshot geometry (all 0 when the
	// sender holds no state yet).
	N      uint32
	Rank   uint16
	Shards uint16
	// Steps is the training step counter of the sender's state.
	Steps uint64
	// Vers holds one version per shard (len == Shards).
	Vers []uint64
}

// DeltaRequest pulls the listed stale shards from a peer — the pull half
// of the anti-entropy exchange.
type DeltaRequest struct {
	// From is the requesting replica's ID.
	From uint32
	// Addr is the requester's gossip listen address (see VersionVec.Addr).
	Addr string
	// Shards lists the shard IDs whose blocks the requester wants.
	Shards []uint16
}

// DeltaBlock carries one shard's coordinate rows at a version: the U and V
// rows of the shard's nodes in ascending global order, each of length
// ShardNodes(n, shard, shards) · rank.
type DeltaBlock struct {
	Shard uint16
	Ver   uint64
	U, V  []float64
}

// Delta carries refreshed shard blocks from one replica state, together
// with the geometry and classification threshold needed to serve from it.
type Delta struct {
	// From is the sending replica's ID.
	From uint32
	// Inc is the sender's incarnation (see VersionVec.Inc).
	Inc uint32
	// N, Rank and Shards describe the snapshot geometry.
	N      uint32
	Rank   uint16
	Shards uint16
	// Steps is the training step counter of the state the blocks came from.
	Steps uint64
	// Tau is the classification threshold the coordinates were trained
	// against; Metric the measured quantity (dataset.Metric).
	Tau    float64
	Metric uint8
	// Blocks holds the refreshed shards (at most Shards).
	Blocks []DeltaBlock
}

// appendAddr encodes a uint16-length-prefixed address string.
func appendAddr(buf []byte, addr string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(addr)))
	return append(buf, addr...)
}

// decodeAddr parses a length-prefixed address and returns the rest.
func decodeAddr(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(p))
	if n > MaxAddrLen {
		return "", nil, ErrTooLarge
	}
	p = p[2:]
	if len(p) < n {
		return "", nil, ErrTruncated
	}
	return string(p[:n]), p[n:], nil
}

// validGeometry checks the (n, rank, shards) triple of a replication
// message against the protocol limits. The total state size n·rank is
// deliberately unbounded: states larger than one frame replicate via
// chunked deltas, and the per-frame float budget is enforced where
// blocks are encoded and decoded.
func validGeometry(n uint32, rank, shards uint16) error {
	if n == 0 || n > MaxNodes {
		return fmt.Errorf("%w: n=%d out of [1,%d]", ErrTooLarge, n, MaxNodes)
	}
	if rank == 0 || rank > MaxRank {
		return fmt.Errorf("%w: rank=%d out of [1,%d]", ErrTooLarge, rank, MaxRank)
	}
	if shards == 0 || shards > MaxShards || uint32(shards) > n {
		return fmt.Errorf("%w: shards=%d out of [1,min(%d,n)]", ErrTooLarge, shards, MaxShards)
	}
	return nil
}

// AppendVersionVec appends the encoded message to buf and returns it.
func AppendVersionVec(buf []byte, m *VersionVec) ([]byte, error) {
	if len(m.Addr) > MaxAddrLen {
		return nil, ErrTooLarge
	}
	if m.N == 0 {
		if m.Rank != 0 || m.Shards != 0 || len(m.Vers) != 0 {
			return nil, fmt.Errorf("wire: empty-state version vec must have zero geometry")
		}
	} else {
		if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
			return nil, err
		}
		if len(m.Vers) != int(m.Shards) {
			return nil, fmt.Errorf("wire: version vec holds %d versions for %d shards", len(m.Vers), m.Shards)
		}
	}
	buf = header(buf, TypeVersionVec)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint32(buf, m.Inc)
	buf = appendAddr(buf, m.Addr)
	buf = binary.BigEndian.AppendUint32(buf, m.N)
	buf = binary.BigEndian.AppendUint16(buf, m.Rank)
	buf = binary.BigEndian.AppendUint16(buf, m.Shards)
	buf = binary.BigEndian.AppendUint64(buf, m.Steps)
	for _, v := range m.Vers {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return buf, nil
}

// DecodeVersionVec parses data into m, reusing m's vector capacity.
func DecodeVersionVec(data []byte, m *VersionVec) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeVersionVec {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeVersionVec)
	}
	p := data[3:]
	if len(p) < 4+4 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Inc = binary.BigEndian.Uint32(p[4:])
	m.Addr, p, err = decodeAddr(p[8:])
	if err != nil {
		return err
	}
	if len(p) < 4+2+2+8 {
		return ErrTruncated
	}
	m.N = binary.BigEndian.Uint32(p)
	m.Rank = binary.BigEndian.Uint16(p[4:])
	m.Shards = binary.BigEndian.Uint16(p[6:])
	m.Steps = binary.BigEndian.Uint64(p[8:])
	p = p[16:]
	if m.N == 0 {
		if m.Rank != 0 || m.Shards != 0 {
			return fmt.Errorf("%w: empty-state version vec with non-zero geometry", ErrBadType)
		}
	} else if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
		return err
	}
	count := int(m.Shards)
	if len(p) != 8*count {
		return ErrTruncated
	}
	if cap(m.Vers) < count {
		m.Vers = make([]uint64, count)
	} else {
		m.Vers = m.Vers[:count]
	}
	for i := 0; i < count; i++ {
		m.Vers[i] = binary.BigEndian.Uint64(p[8*i:])
	}
	return nil
}

// AppendDeltaRequest appends the encoded message to buf and returns it.
func AppendDeltaRequest(buf []byte, m *DeltaRequest) ([]byte, error) {
	if len(m.Addr) > MaxAddrLen || len(m.Shards) > MaxShards {
		return nil, ErrTooLarge
	}
	buf = header(buf, TypeDeltaRequest)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = appendAddr(buf, m.Addr)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Shards)))
	for _, s := range m.Shards {
		buf = binary.BigEndian.AppendUint16(buf, s)
	}
	return buf, nil
}

// DecodeDeltaRequest parses data into m, reusing m's slice capacity.
func DecodeDeltaRequest(data []byte, m *DeltaRequest) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeDeltaRequest {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeDeltaRequest)
	}
	p := data[3:]
	if len(p) < 4 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Addr, p, err = decodeAddr(p[4:])
	if err != nil {
		return err
	}
	if len(p) < 2 {
		return ErrTruncated
	}
	count := int(binary.BigEndian.Uint16(p))
	if count > MaxShards {
		return ErrTooLarge
	}
	p = p[2:]
	if len(p) != 2*count {
		return ErrTruncated
	}
	if cap(m.Shards) < count {
		m.Shards = make([]uint16, count)
	} else {
		m.Shards = m.Shards[:count]
	}
	for i := 0; i < count; i++ {
		m.Shards[i] = binary.BigEndian.Uint16(p[2*i:])
	}
	return nil
}

// AppendDelta appends the encoded message to buf and returns it. Block
// vector lengths must match the declared geometry, and the frame's total
// per-side floats must fit the MaxStateFloats budget — callers chunking a
// larger state split it across frames (replica.State.DeltasFor).
func AppendDelta(buf []byte, m *Delta) ([]byte, error) {
	if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
		return nil, err
	}
	if len(m.Blocks) > int(m.Shards) {
		return nil, ErrTooLarge
	}
	total := uint64(0)
	for _, b := range m.Blocks {
		if b.Shard >= m.Shards {
			return nil, fmt.Errorf("wire: delta block for shard %d of %d", b.Shard, m.Shards)
		}
		want := ShardNodes(int(m.N), int(b.Shard), int(m.Shards)) * int(m.Rank)
		if len(b.U) != want || len(b.V) != want {
			return nil, fmt.Errorf("wire: delta block shard %d rows %d/%d, want %d",
				b.Shard, len(b.U), len(b.V), want)
		}
		if total += uint64(want); total > MaxStateFloats {
			return nil, fmt.Errorf("%w: delta frame carries %d floats, budget %d",
				ErrTooLarge, total, uint64(MaxStateFloats))
		}
	}
	buf = header(buf, TypeDelta)
	buf = binary.BigEndian.AppendUint32(buf, m.From)
	buf = binary.BigEndian.AppendUint32(buf, m.Inc)
	buf = binary.BigEndian.AppendUint32(buf, m.N)
	buf = binary.BigEndian.AppendUint16(buf, m.Rank)
	buf = binary.BigEndian.AppendUint16(buf, m.Shards)
	buf = binary.BigEndian.AppendUint64(buf, m.Steps)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Tau))
	buf = append(buf, m.Metric)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Blocks)))
	for _, b := range m.Blocks {
		buf = binary.BigEndian.AppendUint16(buf, b.Shard)
		buf = binary.BigEndian.AppendUint64(buf, b.Ver)
		for _, x := range b.U {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
		}
		for _, x := range b.V {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return buf, nil
}

// DecodeDelta parses data into m. Block lengths are implied by the
// declared geometry and validated against the remaining input before any
// allocation, so a malformed message cannot cause a large allocation.
func DecodeDelta(data []byte, m *Delta) error {
	t, err := PeekType(data)
	if err != nil {
		return err
	}
	if t != TypeDelta {
		return fmt.Errorf("%w: got %v, want %v", ErrBadType, t, TypeDelta)
	}
	p := data[3:]
	if len(p) < 4+4+4+2+2+8+8+1+2 {
		return ErrTruncated
	}
	m.From = binary.BigEndian.Uint32(p)
	m.Inc = binary.BigEndian.Uint32(p[4:])
	m.N = binary.BigEndian.Uint32(p[8:])
	m.Rank = binary.BigEndian.Uint16(p[12:])
	m.Shards = binary.BigEndian.Uint16(p[14:])
	m.Steps = binary.BigEndian.Uint64(p[16:])
	m.Tau = math.Float64frombits(binary.BigEndian.Uint64(p[24:]))
	m.Metric = p[32]
	if err := validGeometry(m.N, m.Rank, m.Shards); err != nil {
		return err
	}
	count := int(binary.BigEndian.Uint16(p[33:]))
	if count > int(m.Shards) {
		return ErrTooLarge
	}
	p = p[35:]
	m.Blocks = m.Blocks[:0]
	total := uint64(0)
	for i := 0; i < count; i++ {
		if len(p) < 2+8 {
			return ErrTruncated
		}
		var b DeltaBlock
		b.Shard = binary.BigEndian.Uint16(p)
		b.Ver = binary.BigEndian.Uint64(p[2:])
		p = p[10:]
		if b.Shard >= m.Shards {
			return fmt.Errorf("wire: delta block for shard %d of %d", b.Shard, m.Shards)
		}
		want := ShardNodes(int(m.N), int(b.Shard), int(m.Shards)) * int(m.Rank)
		if total += uint64(want); total > MaxStateFloats {
			return fmt.Errorf("%w: delta frame carries %d floats, budget %d",
				ErrTooLarge, total, uint64(MaxStateFloats))
		}
		if len(p) < 2*8*want {
			return ErrTruncated
		}
		b.U = make([]float64, want)
		b.V = make([]float64, want)
		for k := 0; k < want; k++ {
			b.U[k] = math.Float64frombits(binary.BigEndian.Uint64(p[8*k:]))
		}
		p = p[8*want:]
		for k := 0; k < want; k++ {
			b.V[k] = math.Float64frombits(binary.BigEndian.Uint64(p[8*k:]))
		}
		p = p[8*want:]
		m.Blocks = append(m.Blocks, b)
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: %d trailing bytes in delta", len(p))
	}
	return nil
}

// appendVector encodes a float64 slice as uint16 length + big-endian bits.
func appendVector(buf []byte, v []float64) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(v)))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// decodeVector parses a vector into dst (reusing capacity) and returns the
// remaining bytes.
func decodeVector(p []byte, dst []float64) ([]float64, []byte, error) {
	if len(p) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(p))
	if n > MaxRank {
		return nil, nil, ErrTooLarge
	}
	p = p[2:]
	if len(p) < 8*n {
		return nil, nil, ErrTruncated
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(p[8*i:]))
	}
	return dst, p[8*n:], nil
}
