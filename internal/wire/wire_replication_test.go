package wire

import (
	"errors"
	"reflect"
	"testing"
)

// deltaFixture builds a consistent 5-node, 2-shard, rank-2 delta.
func deltaFixture() *Delta {
	return &Delta{
		From: 9, Inc: 2, N: 5, Rank: 2, Shards: 2,
		Steps: 12345, Tau: 48.5, Metric: 1,
		Blocks: []DeltaBlock{
			{Shard: 0, Ver: 7, // shard 0 owns nodes 0,2,4 → 3 rows
				U: []float64{1, 2, 3, 4, 5, 6},
				V: []float64{-1, -2, -3, -4, -5, -6}},
			{Shard: 1, Ver: 3, // shard 1 owns nodes 1,3 → 2 rows
				U: []float64{0.5, 0.25, 0.125, 0},
				V: []float64{9, 8, 7, 6}},
		},
	}
}

func TestVersionVecRoundTrip(t *testing.T) {
	in := &VersionVec{
		From: 3, Inc: 5, Addr: "10.0.0.1:9090",
		N: 100, Rank: 10, Shards: 4,
		Steps: 99, Vers: []uint64{1, 0, 7, 2},
	}
	buf, err := AppendVersionVec(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out VersionVec
	if err := DecodeVersionVec(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestVersionVecEmptyState(t *testing.T) {
	in := &VersionVec{From: 1, Addr: "a:1"}
	buf, err := AppendVersionVec(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out VersionVec
	if err := DecodeVersionVec(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 0 || out.Shards != 0 || len(out.Vers) != 0 {
		t.Errorf("got %+v", out)
	}
	// An empty-state vec must not smuggle geometry.
	if _, err := AppendVersionVec(nil, &VersionVec{N: 0, Shards: 3, Vers: make([]uint64, 3)}); err == nil {
		t.Error("empty-state vec with shards accepted")
	}
}

func TestVersionVecValidation(t *testing.T) {
	if _, err := AppendVersionVec(nil, &VersionVec{N: 10, Rank: 2, Shards: 4, Vers: []uint64{1}}); err == nil {
		t.Error("vers/shards mismatch accepted")
	}
	if _, err := AppendVersionVec(nil, &VersionVec{N: 2, Rank: 2, Shards: 4, Vers: make([]uint64, 4)}); err == nil {
		t.Error("shards > n accepted")
	}
	if _, err := AppendVersionVec(nil, &VersionVec{N: MaxNodes + 1, Rank: 2, Shards: 1, Vers: []uint64{1}}); err == nil {
		t.Error("oversized n accepted")
	}
	// n·rank beyond one frame is legal geometry now (chunked bootstrap),
	// as long as each shard block still fits the per-frame budget.
	if _, err := AppendVersionVec(nil, &VersionVec{N: MaxNodes, Rank: 4, Shards: 4, Vers: make([]uint64, 4)}); err != nil {
		t.Errorf("multi-frame geometry rejected: %v", err)
	}
}

func TestDeltaFrameBudget(t *testing.T) {
	// A single-shard delta whose one block exceeds the per-frame float
	// budget must be rejected at encode: it can never ship, the state
	// must be sharded finer (DeltasFor chunks at shard granularity).
	n := uint32(MaxStateFloats/4 + 1)
	rows := int(n) * 4
	d := &Delta{
		From: 1, N: n, Rank: 4, Shards: 1,
		Blocks: []DeltaBlock{{Shard: 0, Ver: 1, U: make([]float64, rows), V: make([]float64, rows)}},
	}
	if _, err := AppendDelta(nil, d); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-budget frame: got %v, want ErrTooLarge", err)
	}
}

func TestDeltaRequestRoundTrip(t *testing.T) {
	in := &DeltaRequest{From: 2, Addr: "b:7", Shards: []uint16{0, 3, 9}}
	buf, err := AppendDeltaRequest(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out DeltaRequest
	if err := DecodeDeltaRequest(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	in := deltaFixture()
	buf, err := AppendDelta(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	var out Delta
	if err := DecodeDelta(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestDeltaEncodeValidation(t *testing.T) {
	d := deltaFixture()
	d.Blocks[0].U = d.Blocks[0].U[:4] // wrong row count for shard 0
	if _, err := AppendDelta(nil, d); err == nil {
		t.Error("mis-sized block accepted")
	}
	d = deltaFixture()
	d.Blocks[1].Shard = 5 // beyond the shard count
	if _, err := AppendDelta(nil, d); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	d = deltaFixture()
	d.Shards = 0
	if _, err := AppendDelta(nil, d); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestDeltaDecodeCorrupt(t *testing.T) {
	good, err := AppendDelta(nil, deltaFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly, never panic.
	for cut := 0; cut < len(good); cut++ {
		var out Delta
		if err := DecodeDelta(good[:cut], &out); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Trailing garbage is rejected.
	var out Delta
	if err := DecodeDelta(append(append([]byte(nil), good...), 0xAB), &out); err == nil {
		t.Error("trailing byte accepted")
	}
	// A block for a shard beyond the declared count is rejected.
	bad := append([]byte(nil), good...)
	// Blocks start after header(3) + from(4) + inc(4) + n(4) + rank(2) +
	// shards(2) + steps(8) + tau(8) + metric(1) + count(2) = 38; first
	// block's shard id is at offset 38.
	bad[38], bad[39] = 0xFF, 0xFF
	if err := DecodeDelta(bad, &out); err == nil {
		t.Error("out-of-range block shard accepted")
	}
	// Wrong type dispatch.
	if err := DecodeDelta([]byte{Magic, Version, byte(TypeJoin), 0, 0, 0, 0, 0, 0}, &out); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong-type decode: %v", err)
	}
}

func TestShardNodes(t *testing.T) {
	// 5 nodes over 2 shards: shard 0 owns {0,2,4}, shard 1 owns {1,3}.
	if got := ShardNodes(5, 0, 2); got != 3 {
		t.Errorf("ShardNodes(5,0,2) = %d", got)
	}
	if got := ShardNodes(5, 1, 2); got != 2 {
		t.Errorf("ShardNodes(5,1,2) = %d", got)
	}
	total := 0
	for p := 0; p < 7; p++ {
		total += ShardNodes(100, p, 7)
	}
	if total != 100 {
		t.Errorf("shard sizes sum to %d, want 100", total)
	}
}
