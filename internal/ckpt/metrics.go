package ckpt

import "dmfsgd/internal/metrics"

// Durability series (DESIGN.md §12).
var (
	mSaves = metrics.Default().Counter("dmf_ckpt_saves_total",
		"Checkpoints durably written (temp + fsync + rename).")
	mSaveBytes = metrics.Default().Counter("dmf_ckpt_save_bytes_total",
		"Bytes of checkpoint payload written.")
	mSaveSec = metrics.Default().Histogram("dmf_ckpt_save_seconds",
		"Durable checkpoint write duration, fsyncs included.", metrics.DurationBuckets)
	mRestores = metrics.Default().Counter("dmf_ckpt_restores_total",
		"Checkpoints read back successfully.")
)
