package ckpt

import (
	"time"

	"dmfsgd/internal/metrics"
)

// Durability series (DESIGN.md §12).
var (
	mSaves = metrics.Default().Counter("dmf_ckpt_saves_total",
		"Checkpoints durably written (temp + fsync + rename).")
	mSaveBytes = metrics.Default().Counter("dmf_ckpt_save_bytes_total",
		"Bytes of checkpoint payload written.")
	mSaveSec = metrics.Default().Histogram("dmf_ckpt_save_seconds",
		"Durable checkpoint write duration, fsyncs included.", metrics.DurationBuckets)
	mRestores = metrics.Default().Counter("dmf_ckpt_restores_total",
		"Checkpoints read back successfully.")
	mDeltaSaves = metrics.Default().Counter("dmf_ckpt_delta_saves_total",
		"Incremental (delta) checkpoint records durably written.")
)

// Wall-clock seam (dmfvet noclock exempts this file): save duration is
// read here and feeds metrics and traces only. Checkpoint *content* is
// a pure function of engine state — no timestamp enters the format.

// startTimer reads the clock for a later sinceDur.
func startTimer() time.Time { return time.Now() }

// sinceDur returns the duration elapsed since t0, for observation and
// trace emission.
func sinceDur(t0 time.Time) time.Duration { return time.Since(t0) }
