package ckpt

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzReadCheckpoint feeds arbitrary bytes to the decoder: it must
// never panic and never allocate past the format limits, and anything
// it does accept must re-encode and re-decode to the same value.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DMFC"))
	enc := &bytes.Buffer{}
	if err := Write(enc, &Checkpoint{
		N: 3, Rank: 2, Shards: 2, K: 1,
		Steps: 7, Seed: 42, Draws: 100, WALSeq: 3,
		Tau: 50, Eta: 0.1, Lambda: 0.1, Loss: 0, Metric: 1,
		NodeDraws: []uint64{1, 2, 3},
		Cursors:   [][]uint64{{9}},
		Vers:      []uint64{1, 2},
		U:         []float64{1, 2, 3, 4, 5, 6},
		V:         []float64{6, 5, 4, 3, 2, 1},
	}); err != nil {
		f.Fatal(err)
	}
	valid := enc.Bytes()
	f.Add(bytes.Clone(valid))
	f.Add(bytes.Clone(valid[:len(valid)/2]))
	// A header declaring enormous sections with no payload behind it.
	huge := bytes.Clone(valid[:7+headerLen])
	binary.BigEndian.PutUint32(huge[7:], 1<<19)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted checkpoint fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		c2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("re-encode round trip drifted")
		}
	})
}

// FuzzReadDelta feeds arbitrary bytes to the v3 chunked delta decoder:
// it must never panic, and any delta it accepts must apply cleanly to
// the base it declares (its own PrevVers) and re-encode byte-stably.
func FuzzReadDelta(f *testing.F) {
	mk := func(vers, prevVers []uint64, mut func(c *Checkpoint)) []byte {
		c := &Checkpoint{
			N: 5, Rank: 2, Shards: 3, K: 1,
			Steps: 9, Seed: 11, Draws: 2, WALSeq: 4,
			Tau: 40, Eta: 0.05, Lambda: 0.01, Loss: 1, Metric: 0,
			Vers: vers,
			U:    []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			V:    []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		}
		if mut != nil {
			mut(c)
		}
		var buf bytes.Buffer
		if err := WriteDelta(&buf, c, prevVers); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("DMFC"))
	one := mk([]uint64{3, 1, 2}, []uint64{3, 0, 2}, nil)
	f.Add(bytes.Clone(one))
	f.Add(bytes.Clone(one[:len(one)/2]))
	f.Add(mk([]uint64{1, 1, 1}, []uint64{1, 1, 1}, nil)) // zero blocks
	f.Add(mk([]uint64{2, 2, 2}, []uint64{1, 1, 1}, func(c *Checkpoint) {
		c.NodeDraws = []uint64{1, 2, 3, 4, 5}
		c.Cursors = [][]uint64{{6}}
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDelta(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Rebuild the base the delta claims to extend and apply it: an
		// accepted delta must never fail application to that base.
		base := &Checkpoint{
			N: d.Head.N, Rank: d.Head.Rank, Shards: d.Head.Shards, K: d.Head.K,
			Seed: d.Head.Seed, Tau: d.Head.Tau, Eta: d.Head.Eta, Lambda: d.Head.Lambda,
			Loss: d.Head.Loss, Metric: d.Head.Metric,
			Vers: append([]uint64(nil), d.PrevVers...),
			U:    make([]float64, d.Head.N*d.Head.Rank),
			V:    make([]float64, d.Head.N*d.Head.Rank),
		}
		if err := ApplyDelta(base, d); err != nil {
			t.Fatalf("accepted delta fails to apply to its own base: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDelta(&buf, base, d.PrevVers); err != nil {
			t.Fatalf("re-encode of applied delta failed: %v", err)
		}
		d2, err := ReadDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(d.Blocks, d2.Blocks) {
			t.Fatal("delta blocks drifted through apply + re-encode")
		}
	})
}
