package ckpt

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzReadCheckpoint feeds arbitrary bytes to the decoder: it must
// never panic and never allocate past the format limits, and anything
// it does accept must re-encode and re-decode to the same value.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DMFC"))
	enc := &bytes.Buffer{}
	if err := Write(enc, &Checkpoint{
		N: 3, Rank: 2, Shards: 2, K: 1,
		Steps: 7, Seed: 42, Draws: 100, WALSeq: 3,
		Tau: 50, Eta: 0.1, Lambda: 0.1, Loss: 0, Metric: 1,
		NodeDraws: []uint64{1, 2, 3},
		Cursors:   [][]uint64{{9}},
		Vers:      []uint64{1, 2},
		U:         []float64{1, 2, 3, 4, 5, 6},
		V:         []float64{6, 5, 4, 3, 2, 1},
	}); err != nil {
		f.Fatal(err)
	}
	valid := enc.Bytes()
	f.Add(bytes.Clone(valid))
	f.Add(bytes.Clone(valid[:len(valid)/2]))
	// A header declaring enormous sections with no payload behind it.
	huge := bytes.Clone(valid[:6+headerLen])
	binary.BigEndian.PutUint32(huge[6:], 1<<19)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted checkpoint fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		c2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("re-encode round trip drifted")
		}
	})
}
