package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden checkpoint fixture")

// goldenCheckpoint is the fixed fixture: every field exercised, values
// chosen so byte-level drift in any section shows up.
func goldenCheckpoint() *Checkpoint {
	return &Checkpoint{
		N: 4, Rank: 2, Shards: 2, K: 3,
		Steps:  12345,
		Seed:   -7,
		Draws:  99991,
		WALSeq: 42,
		Tau:    95.5, Eta: 0.1, Lambda: 0.05,
		Loss: 1, Metric: 2,
		Incarnation: 7,
		NodeDraws:   []uint64{10, 20, 30, 40},
		Cursors:     [][]uint64{{7}, {}, {1, 2, 3}},
		Vers:        []uint64{5, 9},
		U:           []float64{0.125, -1.5, 2.25, 3, -0.0625, 7, 8.5, -9},
		V:           []float64{1, 2, 3, 4, 5.5, -6.5, 7.75, 0.0078125},
	}
}

func encode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := goldenCheckpoint()
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenFile pins the current (v2) byte layout: encoding the fixture
// must reproduce the committed file exactly, and decoding the committed
// file must reproduce the fixture. Any layout change breaks this test —
// bump Version and add a new fixture instead of silently reshaping an
// existing version.
func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "checkpoint_v2.golden")
	enc := encode(t, goldenCheckpoint())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("encoding drifted from the committed v2 fixture (%d vs %d bytes)", len(enc), len(want))
	}
	dec, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if !reflect.DeepEqual(dec, goldenCheckpoint()) {
		t.Errorf("golden decode mismatch: %+v", dec)
	}
}

// TestGoldenV1Decode pins backward compatibility: a committed version-1
// file (written before the incarnation field existed) must keep decoding,
// yielding incarnation 0.
func TestGoldenV1Decode(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v1.golden"))
	if err != nil {
		t.Fatalf("read v1 golden: %v", err)
	}
	dec, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	expect := goldenCheckpoint()
	expect.Incarnation = 0 // predates the field
	if !reflect.DeepEqual(dec, expect) {
		t.Errorf("v1 golden decode mismatch:\n got %+v\nwant %+v", dec, expect)
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	enc := encode(t, goldenCheckpoint())

	bad := bytes.Clone(enc)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}

	// A version-bumped header must fail with the typed sentinel, not a
	// panic and not a misparse.
	bumped := bytes.Clone(enc)
	binary.BigEndian.PutUint16(bumped[4:], Version+1)
	if _, err := Read(bytes.NewReader(bumped)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bumped version: got %v, want ErrBadVersion", err)
	}

	for _, cut := range []int{0, 3, 5, 20, len(enc) / 2, len(enc) - 1} {
		if _, err := Read(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}

	flipped := bytes.Clone(enc)
	flipped[len(flipped)-10] ^= 0x40 // payload byte: CRC must catch it
	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: got %v, want ErrChecksum", err)
	}

	trailing := append(bytes.Clone(enc), 0)
	if _, err := Read(bytes.NewReader(trailing)); !errors.Is(err, ErrInvalid) {
		t.Errorf("trailing byte: got %v, want ErrInvalid", err)
	}
}

func TestReadRejectsOversizedGeometry(t *testing.T) {
	enc := encode(t, goldenCheckpoint())
	huge := bytes.Clone(enc)
	binary.BigEndian.PutUint32(huge[6:], 1<<30) // n field
	if _, err := Read(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge n: got %v, want ErrTooLarge", err)
	}
}

func TestValidateRejectsInconsistency(t *testing.T) {
	c := goldenCheckpoint()
	c.Vers = c.Vers[:1]
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("short version vector: got %v, want ErrInvalid", err)
	}
	c = goldenCheckpoint()
	c.Tau = math.NaN()
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN tau: got %v, want ErrInvalid", err)
	}
	c = goldenCheckpoint()
	c.NodeDraws = c.NodeDraws[:2]
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("partial node draws: got %v, want ErrInvalid", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	c := goldenCheckpoint()
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Error("file round trip mismatch")
	}
	// Overwrite with different content; no temp litter left behind.
	c.Steps = 999
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err = ReadFile(path)
	if err != nil || got.Steps != 999 {
		t.Fatalf("overwrite not visible: %+v, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}
