package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden checkpoint fixture")

// goldenCheckpoint is the fixed fixture: every field exercised, values
// chosen so byte-level drift in any section shows up.
func goldenCheckpoint() *Checkpoint {
	return &Checkpoint{
		N: 4, Rank: 2, Shards: 2, K: 3,
		Steps:  12345,
		Seed:   -7,
		Draws:  99991,
		WALSeq: 42,
		Tau:    95.5, Eta: 0.1, Lambda: 0.05,
		Loss: 1, Metric: 2,
		Incarnation: 7,
		NodeDraws:   []uint64{10, 20, 30, 40},
		Cursors:     [][]uint64{{7}, {}, {1, 2, 3}},
		Vers:        []uint64{5, 9},
		U:           []float64{0.125, -1.5, 2.25, 3, -0.0625, 7, 8.5, -9},
		V:           []float64{1, 2, 3, 4, 5.5, -6.5, 7.75, 0.0078125},
	}
}

func encode(t *testing.T, c *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := goldenCheckpoint()
	got, err := Read(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestGoldenFile pins the current (v3) byte layout: encoding the fixture
// must reproduce the committed file exactly, and decoding the committed
// file must reproduce the fixture. Any layout change breaks this test —
// bump Version and add a new fixture instead of silently reshaping an
// existing version.
func TestGoldenFile(t *testing.T) {
	path := filepath.Join("testdata", "checkpoint_v3.golden")
	enc := encode(t, goldenCheckpoint())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Errorf("encoding drifted from the committed v3 fixture (%d vs %d bytes)", len(enc), len(want))
	}
	dec, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if !reflect.DeepEqual(dec, goldenCheckpoint()) {
		t.Errorf("golden decode mismatch: %+v", dec)
	}
}

// TestGoldenDeltaFile pins the v3 delta byte layout the same way.
func TestGoldenDeltaFile(t *testing.T) {
	path := filepath.Join("testdata", "delta_v3.golden")
	c := goldenCheckpoint()
	prev := []uint64{5, 4} // shard 1 advanced (4 → 9), shard 0 quiet
	var buf bytes.Buffer
	if err := WriteDelta(&buf, c, prev); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("delta encoding drifted from the committed fixture (%d vs %d bytes)", buf.Len(), len(want))
	}
	d, err := ReadDelta(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode golden delta: %v", err)
	}
	if len(d.Blocks) != 1 || d.Blocks[0].Shard != 1 {
		t.Fatalf("golden delta blocks = %+v, want exactly shard 1", d.Blocks)
	}
}

// TestGoldenV1Decode pins backward compatibility: a committed version-1
// file (written before the incarnation field existed) must keep decoding,
// yielding incarnation 0.
func TestGoldenV1Decode(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v1.golden"))
	if err != nil {
		t.Fatalf("read v1 golden: %v", err)
	}
	dec, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	expect := goldenCheckpoint()
	expect.Incarnation = 0 // predates the field
	if !reflect.DeepEqual(dec, expect) {
		t.Errorf("v1 golden decode mismatch:\n got %+v\nwant %+v", dec, expect)
	}
}

// TestGoldenV2Decode pins backward compatibility with the last
// flat-layout version: the committed version-2 file keeps decoding to
// the same state the version-3 encoder would capture.
func TestGoldenV2Decode(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v2.golden"))
	if err != nil {
		t.Fatalf("read v2 golden: %v", err)
	}
	dec, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("decode v2 golden: %v", err)
	}
	if !reflect.DeepEqual(dec, goldenCheckpoint()) {
		t.Errorf("v2 golden decode mismatch:\n got %+v\nwant %+v", dec, goldenCheckpoint())
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	enc := encode(t, goldenCheckpoint())

	bad := bytes.Clone(enc)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}

	// A version-bumped header must fail with the typed sentinel, not a
	// panic and not a misparse.
	bumped := bytes.Clone(enc)
	binary.BigEndian.PutUint16(bumped[4:], Version+1)
	if _, err := Read(bytes.NewReader(bumped)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bumped version: got %v, want ErrBadVersion", err)
	}

	for _, cut := range []int{0, 3, 5, 20, len(enc) / 2, len(enc) - 1} {
		if _, err := Read(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}

	flipped := bytes.Clone(enc)
	flipped[len(flipped)-10] ^= 0x40 // payload byte: CRC must catch it
	if _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: got %v, want ErrChecksum", err)
	}

	trailing := append(bytes.Clone(enc), 0)
	if _, err := Read(bytes.NewReader(trailing)); !errors.Is(err, ErrInvalid) {
		t.Errorf("trailing byte: got %v, want ErrInvalid", err)
	}
}

func TestReadRejectsOversizedGeometry(t *testing.T) {
	enc := encode(t, goldenCheckpoint())
	huge := bytes.Clone(enc)
	binary.BigEndian.PutUint32(huge[7:], 1<<30) // n field (after the kind byte)
	if _, err := Read(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge n: got %v, want ErrTooLarge", err)
	}
}

func TestValidateRejectsInconsistency(t *testing.T) {
	c := goldenCheckpoint()
	c.Vers = c.Vers[:1]
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("short version vector: got %v, want ErrInvalid", err)
	}
	c = goldenCheckpoint()
	c.Tau = math.NaN()
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN tau: got %v, want ErrInvalid", err)
	}
	c = goldenCheckpoint()
	c.NodeDraws = c.NodeDraws[:2]
	if err := c.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("partial node draws: got %v, want ErrInvalid", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	c := goldenCheckpoint()
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Error("file round trip mismatch")
	}
	// Overwrite with different content; no temp litter left behind.
	c.Steps = 999
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err = ReadFile(path)
	if err != nil || got.Steps != 999 {
		t.Fatalf("overwrite not visible: %+v, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp files left behind: %v", ents)
	}
}

// advance mutates c as one more save interval of training would: shard
// p's rows move and its version bumps; counters advance.
func advance(c *Checkpoint, shard int, by float64) {
	for i := shard; i < c.N; i += c.Shards {
		for j := 0; j < c.Rank; j++ {
			c.U[i*c.Rank+j] += by
			c.V[i*c.Rank+j] -= by
		}
	}
	c.Vers[shard]++
	c.Steps += 100
	c.Draws += 7
	c.WALSeq += 3
}

func TestDeltaRoundTripAndApply(t *testing.T) {
	base := goldenCheckpoint()
	next := goldenCheckpoint()
	advance(next, 1, 0.5)

	var buf bytes.Buffer
	if err := WriteDelta(&buf, next, base.Vers); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	if full := len(encode(t, next)); buf.Len() >= full {
		t.Errorf("one-dirty-shard delta (%d bytes) not smaller than full (%d bytes)", buf.Len(), full)
	}
	d, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDelta: %v", err)
	}
	if len(d.Blocks) != 1 || d.Blocks[0].Shard != 1 {
		t.Fatalf("blocks = %+v, want exactly shard 1", d.Blocks)
	}
	if err := ApplyDelta(base, d); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !reflect.DeepEqual(base, next) {
		t.Errorf("base+delta mismatch:\n got %+v\nwant %+v", base, next)
	}

	// A delta where nothing advanced still carries the counters.
	quiet := goldenCheckpoint()
	quiet.Steps, quiet.WALSeq = 99999, 77
	buf.Reset()
	if err := WriteDelta(&buf, quiet, quiet.Vers); err != nil {
		t.Fatalf("WriteDelta quiet: %v", err)
	}
	d, err = ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDelta quiet: %v", err)
	}
	if len(d.Blocks) != 0 || d.Head.Steps != 99999 || d.Head.WALSeq != 77 {
		t.Fatalf("quiet delta = %d blocks, steps %d", len(d.Blocks), d.Head.Steps)
	}
}

func TestApplyDeltaRejectsWrongBase(t *testing.T) {
	base := goldenCheckpoint()
	next := goldenCheckpoint()
	advance(next, 0, 1)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, next, base.Vers); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	moved := goldenCheckpoint()
	moved.Vers[0] = 100 // not the state the delta was cut against
	if err := ApplyDelta(moved, d); !errors.Is(err, ErrChain) {
		t.Errorf("version mismatch: got %v, want ErrChain", err)
	}
	reseeded := goldenCheckpoint()
	reseeded.Seed = 1
	if err := ApplyDelta(reseeded, d); !errors.Is(err, ErrChain) {
		t.Errorf("seed mismatch: got %v, want ErrChain", err)
	}
}

func TestReadKindMismatch(t *testing.T) {
	full := encode(t, goldenCheckpoint())
	if _, err := ReadDelta(bytes.NewReader(full)); !errors.Is(err, ErrKind) {
		t.Errorf("ReadDelta on full: got %v, want ErrKind", err)
	}
	next := goldenCheckpoint()
	advance(next, 1, 0.5)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, next, goldenCheckpoint().Vers); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrKind) {
		t.Errorf("Read on delta: got %v, want ErrKind", err)
	}
}

// TestChainWriterAndLoadChain drives the base-every-K policy through
// two chain epochs and checks LoadChain resolves each prefix, prunes
// land where they should, and stale deltas from the previous epoch are
// ignored on their PrevVers linkage.
func TestChainWriterAndLoadChain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	cw := NewChainWriter(path, 3)

	cur := goldenCheckpoint()
	saves := []*Checkpoint{}
	save := func(wantDelta bool) {
		t.Helper()
		snap := cloneCheckpoint(cur)
		delta, err := cw.Save(snap)
		if err != nil {
			t.Fatalf("save %d: %v", len(saves), err)
		}
		if delta != wantDelta {
			t.Fatalf("save %d: delta=%v, want %v", len(saves), delta, wantDelta)
		}
		saves = append(saves, snap)
		got, n, err := LoadChain(path)
		if err != nil {
			t.Fatalf("LoadChain after save %d: %v", len(saves)-1, err)
		}
		if !reflect.DeepEqual(got, snap) {
			t.Fatalf("LoadChain after save %d drifted:\n got %+v\nwant %+v", len(saves)-1, got, snap)
		}
		wantN := (len(saves) - 1) % 4 // each epoch is base + 3 deltas
		if n != wantN {
			t.Fatalf("LoadChain after save %d: %d deltas, want %d", len(saves)-1, n, wantN)
		}
	}

	save(false) // base
	advance(cur, 0, 0.25)
	save(true) // d001
	advance(cur, 1, 0.25)
	save(true) // d002
	advance(cur, 0, 0.25)
	advance(cur, 1, 0.25)
	save(true) // d003
	advance(cur, 0, 0.25)
	save(false) // rolls to a new base, prunes d001..d003
	for i := 1; i <= 3; i++ {
		if _, err := os.Stat(DeltaPath(path, i)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale delta %d survived the base roll: %v", i, err)
		}
	}
	advance(cur, 1, 0.25)
	save(true) // d001 of the new epoch

	// A stale orphan beyond the live chain must not extend it.
	stale := cloneCheckpoint(cur)
	stale.Vers[0] += 41 // linkage that matches no real state
	if err := WriteDeltaFile(DeltaPath(path, 2), stale, stale.Vers); err != nil {
		t.Fatal(err)
	}
	got, n, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !reflect.DeepEqual(got, saves[len(saves)-1]) {
		t.Errorf("stale orphan extended the chain: n=%d", n)
	}
}

func cloneCheckpoint(c *Checkpoint) *Checkpoint {
	out := *c
	out.NodeDraws = append([]uint64(nil), c.NodeDraws...)
	out.Cursors = make([][]uint64, len(c.Cursors))
	for i, cur := range c.Cursors {
		out.Cursors[i] = append([]uint64{}, cur...)
	}
	out.Vers = append([]uint64(nil), c.Vers...)
	out.U = append([]float64(nil), c.U...)
	out.V = append([]float64(nil), c.V...)
	return &out
}

// TestLargeStateRoundTrip pins the point of the v3 chunked layout: a
// state past the one-frame wire budget (n·rank > wire.MaxStateFloats,
// unwritable before v3) round-trips through file save/load.
func TestLargeStateRoundTrip(t *testing.T) {
	n, rank := 4100, 512 // n·rank = 2,099,200 > 2,097,152
	c := &Checkpoint{
		N: n, Rank: rank, Shards: 64, K: 10,
		Steps: 5, Seed: 3, Tau: 50, Eta: 0.1, Lambda: 0.01,
		Vers: make([]uint64, 64),
		U:    make([]float64, n*rank),
		V:    make([]float64, n*rank),
	}
	for i := range c.U {
		c.U[i] = float64(i%97) * 0.125
		c.V[i] = -float64(i%89) * 0.25
	}
	for p := range c.Vers {
		c.Vers[p] = uint64(p)
	}
	path := filepath.Join(t.TempDir(), "big.ckpt")
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Error("large state drifted through the chunked layout")
	}
	// And incrementally: dirty one shard, save a delta, re-resolve.
	advance(c, 7, 0.5)
	if err := WriteDeltaFile(DeltaPath(path, 1), c, got.Vers); err != nil {
		t.Fatalf("WriteDeltaFile: %v", err)
	}
	st, err := os.Stat(DeltaPath(path, 1))
	if err != nil {
		t.Fatal(err)
	}
	if full, _ := os.Stat(path); st.Size() > full.Size()/8 {
		t.Errorf("one shard of 64 dirty: delta %d bytes vs full %d", st.Size(), full.Size())
	}
	resolved, nd, err := LoadChain(path)
	if err != nil || nd != 1 {
		t.Fatalf("LoadChain: n=%d, %v", nd, err)
	}
	if !reflect.DeepEqual(resolved, c) {
		t.Error("large-state delta chain drifted")
	}
}
