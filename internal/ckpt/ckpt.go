// Package ckpt defines the durable checkpoint format for DMFSGD
// training state: a versioned binary capture of every node's
// coordinates (flat row-major U and V), the per-shard version vector,
// and the counters a session needs to resume training bit-identically
// after a restart — the step count, the RNG draw counts of the master
// and per-node streams, the measurement-WAL sequence already folded in,
// and the stream cursors of the measurement source chain.
//
// The format follows the wire package's codec discipline: fixed-layout
// big-endian fields, a (magic, version) header, and decoders that
// validate every declared length against hard protocol limits before
// allocating, so a truncated, corrupt or malicious file yields a typed
// error — never a panic or an attacker-sized allocation. Variable
// sections are read in bounded chunks, so allocation grows only as
// payload bytes actually arrive. A CRC-32 trailer detects torn or
// bit-rotted files.
//
// Writers should go through WriteFile, which writes to a temporary file
// in the destination directory, syncs it, and renames it into place —
// a crash mid-checkpoint leaves the previous checkpoint intact.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"dmfsgd/internal/metrics"
	"dmfsgd/internal/wire"
)

// Format constants.
const (
	// Version is the checkpoint format version this package writes.
	// Version 2 appends the writer's incarnation counter to the fixed
	// header. Read accepts version 1 files (incarnation 0) for
	// compatibility with pre-cluster checkpoints and rejects anything
	// else with ErrBadVersion — a process must never guess at the
	// meaning of a future (or corrupted) layout.
	Version = 2

	// MaxCursorLayers bounds the source-chain cursor count.
	MaxCursorLayers = 64
	// MaxCursorVals bounds the values one cursor layer may carry.
	MaxCursorVals = 64
)

// magic identifies a DMFSGD checkpoint file.
var magic = [4]byte{'D', 'M', 'F', 'C'}

// Errors returned by the decoder. Read wraps each with positional
// context; test with errors.Is.
var (
	ErrBadMagic   = errors.New("ckpt: not a DMFSGD checkpoint (bad magic)")
	ErrBadVersion = errors.New("ckpt: unsupported checkpoint version")
	ErrTruncated  = errors.New("ckpt: truncated checkpoint")
	ErrTooLarge   = errors.New("ckpt: field exceeds format limit")
	ErrInvalid    = errors.New("ckpt: inconsistent checkpoint")
	ErrChecksum   = errors.New("ckpt: checksum mismatch")
)

// Checkpoint is one decoded training-state capture.
type Checkpoint struct {
	// N, Rank and Shards fix the coordinate geometry (the store's).
	N, Rank, Shards int
	// K is the neighbor count per node of the session that wrote the
	// checkpoint; 0 when the writer has no topology (a serving replica).
	K int
	// Steps is the cumulative successful-update counter.
	Steps uint64
	// Seed is the master seed of the run.
	Seed int64
	// Draws counts the draws consumed from the master sequential RNG
	// stream (0 when the writer does not track it).
	Draws uint64
	// WALSeq is the measurement-WAL sequence number already folded into
	// this state: on resume, WAL entries with seq ≤ WALSeq are skipped
	// (idempotent replay at the checkpoint barrier).
	WALSeq uint64
	// Incarnation is the writer's lineage counter at capture: a process
	// resuming from this checkpoint announces itself with a strictly
	// higher incarnation, so replication followers re-admit it as a new
	// lineage rather than comparing its restarted version counters
	// against the dead lineage's. 0 in version-1 files.
	Incarnation uint32
	// Tau is the classification threshold; Eta and Lambda the SGD
	// hyper-parameters; Loss the loss id; Metric the measured quantity.
	Tau, Eta, Lambda float64
	Loss             uint8
	Metric           uint8
	// NodeDraws holds the per-node epoch-stream draw counts (len 0 when
	// the parallel scheduler never ran, len N otherwise).
	NodeDraws []uint64
	// Cursors holds the stream positions of the measurement source
	// chain, one entry per cursor-bearing layer, outermost first.
	Cursors [][]uint64
	// Vers is the per-shard store version vector (len Shards).
	Vers []uint64
	// U and V are the flat row-major coordinates (len N·Rank each).
	U, V []float64
}

// Validate checks the checkpoint's geometry and section lengths against
// the format limits — everything Write enforces and Read guarantees.
func (c *Checkpoint) Validate() error {
	if c.N < 1 || c.N > wire.MaxNodes {
		return fmt.Errorf("%w: n=%d out of [1,%d]", ErrTooLarge, c.N, wire.MaxNodes)
	}
	if c.Rank < 1 || c.Rank > wire.MaxRank {
		return fmt.Errorf("%w: rank=%d out of [1,%d]", ErrTooLarge, c.Rank, wire.MaxRank)
	}
	if uint64(c.N)*uint64(c.Rank) > wire.MaxStateFloats {
		return fmt.Errorf("%w: n·rank=%d exceeds %d", ErrTooLarge, uint64(c.N)*uint64(c.Rank), wire.MaxStateFloats)
	}
	if c.Shards < 1 || c.Shards > wire.MaxShards || c.Shards > c.N {
		return fmt.Errorf("%w: shards=%d out of [1,min(%d,n)]", ErrTooLarge, c.Shards, wire.MaxShards)
	}
	if c.K < 0 || c.K >= c.N {
		return fmt.Errorf("%w: k=%d out of [0,%d)", ErrInvalid, c.K, c.N)
	}
	if len(c.NodeDraws) != 0 && len(c.NodeDraws) != c.N {
		return fmt.Errorf("%w: %d node draw counts for %d nodes", ErrInvalid, len(c.NodeDraws), c.N)
	}
	if len(c.Cursors) > MaxCursorLayers {
		return fmt.Errorf("%w: %d cursor layers exceed %d", ErrTooLarge, len(c.Cursors), MaxCursorLayers)
	}
	for i, cur := range c.Cursors {
		if len(cur) > MaxCursorVals {
			return fmt.Errorf("%w: cursor layer %d carries %d values, limit %d", ErrTooLarge, i, len(cur), MaxCursorVals)
		}
	}
	if len(c.Vers) != c.Shards {
		return fmt.Errorf("%w: version vector of %d for %d shards", ErrInvalid, len(c.Vers), c.Shards)
	}
	if len(c.U) != c.N*c.Rank || len(c.V) != c.N*c.Rank {
		return fmt.Errorf("%w: flat arrays %d/%d, want %d", ErrInvalid, len(c.U), len(c.V), c.N*c.Rank)
	}
	for _, x := range []float64{c.Tau, c.Eta, c.Lambda} {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: non-finite hyper-parameter", ErrInvalid)
		}
	}
	for k := range c.U {
		if math.IsNaN(c.U[k]) || math.IsInf(c.U[k], 0) || math.IsNaN(c.V[k]) || math.IsInf(c.V[k], 0) {
			return fmt.Errorf("%w: non-finite coordinate at row %d", ErrInvalid, k/c.Rank)
		}
	}
	return nil
}

// headerLenV1 is the byte length of the version-1 fixed header that
// follows the (magic, version) prefix; version 2 appends incarnation[4].
const headerLenV1 = 4 + 2 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 1 + 4
const headerLen = headerLenV1 + 4

// Write encodes c to w. The layout is:
//
//	magic[4] version[2]
//	n[4] rank[2] shards[2] k[4] steps[8] seed[8] draws[8] walSeq[8]
//	tau[8] eta[8] lambda[8] loss[1] metric[1] nodeDrawCount[4]
//	incarnation[4]            (version ≥ 2)
//	nodeDraws[8·count]
//	cursorLayers[2] { vals[2] val[8]·vals }·layers
//	vers[8·shards] u[8·n·rank] v[8·n·rank]
//	crc32[4]
//
// all big-endian; the CRC-32 (IEEE) covers every preceding byte.
func Write(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	buf := make([]byte, 0, 64)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.N))
	buf = binary.BigEndian.AppendUint16(buf, uint16(c.Rank))
	buf = binary.BigEndian.AppendUint16(buf, uint16(c.Shards))
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.K))
	buf = binary.BigEndian.AppendUint64(buf, c.Steps)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Seed))
	buf = binary.BigEndian.AppendUint64(buf, c.Draws)
	buf = binary.BigEndian.AppendUint64(buf, c.WALSeq)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Tau))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Eta))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Lambda))
	buf = append(buf, c.Loss, c.Metric)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.NodeDraws)))
	buf = binary.BigEndian.AppendUint32(buf, c.Incarnation)
	if _, err := mw.Write(buf); err != nil {
		return err
	}
	if err := writeUint64s(mw, c.NodeDraws); err != nil {
		return err
	}
	var small [8]byte
	binary.BigEndian.PutUint16(small[:2], uint16(len(c.Cursors)))
	if _, err := mw.Write(small[:2]); err != nil {
		return err
	}
	for _, cur := range c.Cursors {
		binary.BigEndian.PutUint16(small[:2], uint16(len(cur)))
		if _, err := mw.Write(small[:2]); err != nil {
			return err
		}
		if err := writeUint64s(mw, cur); err != nil {
			return err
		}
	}
	if err := writeUint64s(mw, c.Vers); err != nil {
		return err
	}
	if err := writeFloats(mw, c.U); err != nil {
		return err
	}
	if err := writeFloats(mw, c.V); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(small[:4], crc.Sum32())
	_, err := w.Write(small[:4])
	return err
}

// Read decodes one checkpoint from r, validating every declared length
// before the corresponding allocation and verifying the CRC trailer.
// Exactly the checkpoint's bytes are consumed; trailing bytes (when r
// is a file read to its end) are rejected as ErrInvalid.
func Read(r io.Reader) (*Checkpoint, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var pre [6]byte
	if _, err := io.ReadFull(tr, pre[:]); err != nil {
		return nil, truncated(err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, ErrBadMagic
	}
	v := binary.BigEndian.Uint16(pre[4:])
	if v != 1 && v != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads 1..%d", ErrBadVersion, v, Version)
	}
	hdrLen := headerLen
	if v == 1 {
		hdrLen = headerLenV1
	}
	var hdrBuf [headerLen]byte
	hdr := hdrBuf[:hdrLen]
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, truncated(err)
	}
	c := &Checkpoint{
		N:      int(binary.BigEndian.Uint32(hdr[0:])),
		Rank:   int(binary.BigEndian.Uint16(hdr[4:])),
		Shards: int(binary.BigEndian.Uint16(hdr[6:])),
		K:      int(binary.BigEndian.Uint32(hdr[8:])),
		Steps:  binary.BigEndian.Uint64(hdr[12:]),
		Seed:   int64(binary.BigEndian.Uint64(hdr[20:])),
		Draws:  binary.BigEndian.Uint64(hdr[28:]),
		WALSeq: binary.BigEndian.Uint64(hdr[36:]),
		Tau:    math.Float64frombits(binary.BigEndian.Uint64(hdr[44:])),
		Eta:    math.Float64frombits(binary.BigEndian.Uint64(hdr[52:])),
		Lambda: math.Float64frombits(binary.BigEndian.Uint64(hdr[60:])),
		Loss:   hdr[68],
		Metric: hdr[69],
	}
	// Geometry limits before any sized allocation.
	if c.N < 1 || c.N > wire.MaxNodes ||
		c.Rank < 1 || c.Rank > wire.MaxRank ||
		uint64(c.N)*uint64(c.Rank) > wire.MaxStateFloats ||
		c.Shards < 1 || c.Shards > wire.MaxShards || c.Shards > c.N ||
		c.K < 0 || c.K >= c.N {
		return nil, fmt.Errorf("%w: geometry n=%d rank=%d shards=%d k=%d", ErrTooLarge, c.N, c.Rank, c.Shards, c.K)
	}
	nodeDraws := int(binary.BigEndian.Uint32(hdr[70:]))
	if nodeDraws != 0 && nodeDraws != c.N {
		return nil, fmt.Errorf("%w: %d node draw counts for %d nodes", ErrInvalid, nodeDraws, c.N)
	}
	if v >= 2 {
		c.Incarnation = binary.BigEndian.Uint32(hdr[74:])
	}

	var err error
	if c.NodeDraws, err = readUint64s(tr, nodeDraws); err != nil {
		return nil, err
	}
	var small [4]byte
	if _, err := io.ReadFull(tr, small[:2]); err != nil {
		return nil, truncated(err)
	}
	layers := int(binary.BigEndian.Uint16(small[:2]))
	if layers > MaxCursorLayers {
		return nil, fmt.Errorf("%w: %d cursor layers exceed %d", ErrTooLarge, layers, MaxCursorLayers)
	}
	if layers > 0 {
		c.Cursors = make([][]uint64, layers)
		for i := range c.Cursors {
			if _, err := io.ReadFull(tr, small[:2]); err != nil {
				return nil, truncated(err)
			}
			vals := int(binary.BigEndian.Uint16(small[:2]))
			if vals > MaxCursorVals {
				return nil, fmt.Errorf("%w: cursor layer %d carries %d values, limit %d", ErrTooLarge, i, vals, MaxCursorVals)
			}
			if c.Cursors[i], err = readUint64s(tr, vals); err != nil {
				return nil, err
			}
			if c.Cursors[i] == nil {
				c.Cursors[i] = []uint64{}
			}
		}
	}
	if c.Vers, err = readUint64s(tr, c.Shards); err != nil {
		return nil, err
	}
	if c.U, err = readFloats(tr, c.N*c.Rank); err != nil {
		return nil, err
	}
	if c.V, err = readFloats(tr, c.N*c.Rank); err != nil {
		return nil, err
	}

	sum := crc.Sum32() // everything up to (not including) the trailer
	if _, err := io.ReadFull(r, small[:4]); err != nil {
		return nil, truncated(err)
	}
	if binary.BigEndian.Uint32(small[:4]) != sum {
		return nil, ErrChecksum
	}
	if n, _ := r.Read(small[:1]); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after checkpoint", ErrInvalid)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteFile durably writes c to path: temp file in the same directory,
// fsync, atomic rename. A crash mid-write leaves any previous file at
// path intact.
func WriteFile(path string, c *Checkpoint) error {
	start := startTimer()
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Write(f, c); err != nil {
		return fail(err)
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable before callers act on it (the
	// checkpoint-then-truncate ordering of SaveCheckpoint depends on the
	// new directory entry surviving a power cut).
	if d, err := os.Open(dir); err == nil {
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return syncErr
		}
	}
	dur := sinceDur(start)
	mSaves.Inc()
	mSaveBytes.Add(uint64(size))
	mSaveSec.Observe(dur.Seconds())
	metrics.Emit("ckpt_save", dur,
		metrics.KV{K: "bytes", V: size},
		metrics.KV{K: "steps", V: int64(c.Steps)})
	return nil
}

// ReadFile reads the checkpoint at path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Read(f)
	if err == nil {
		mRestores.Inc()
	}
	return c, err
}

// truncated maps short-read errors onto the package sentinel.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return err
}

// chunkBytes bounds one read/convert step of the bulk sections, so a
// short input declaring a huge section allocates at most one chunk
// beyond the bytes that actually arrived.
const chunkBytes = 64 << 10

// readUint64s reads count big-endian uint64s in bounded chunks.
func readUint64s(r io.Reader, count int) ([]uint64, error) {
	if count == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, min(count, chunkBytes/8))
	var buf [chunkBytes]byte
	for len(out) < count {
		want := min((count-len(out))*8, chunkBytes)
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, truncated(err)
		}
		for off := 0; off < want; off += 8 {
			out = append(out, binary.BigEndian.Uint64(buf[off:]))
		}
	}
	return out, nil
}

// readFloats reads count big-endian float64s in bounded chunks.
func readFloats(r io.Reader, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	out := make([]float64, 0, min(count, chunkBytes/8))
	var buf [chunkBytes]byte
	for len(out) < count {
		want := min((count-len(out))*8, chunkBytes)
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, truncated(err)
		}
		for off := 0; off < want; off += 8 {
			out = append(out, math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
		}
	}
	return out, nil
}

// writeUint64s writes vs as big-endian uint64s in bounded chunks.
func writeUint64s(w io.Writer, vs []uint64) error {
	var buf [chunkBytes]byte
	for len(vs) > 0 {
		n := min(len(vs), chunkBytes/8)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[8*i:], vs[i])
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vs = vs[n:]
	}
	return nil
}

// writeFloats writes vs as big-endian float64 bit patterns.
func writeFloats(w io.Writer, vs []float64) error {
	var buf [chunkBytes]byte
	for len(vs) > 0 {
		n := min(len(vs), chunkBytes/8)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(vs[i]))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vs = vs[n:]
	}
	return nil
}
