// Package ckpt defines the durable checkpoint format for DMFSGD
// training state: a versioned binary capture of every node's
// coordinates (flat row-major U and V), the per-shard version vector,
// and the counters a session needs to resume training bit-identically
// after a restart — the step count, the RNG draw counts of the master
// and per-node streams, the measurement-WAL sequence already folded in,
// and the stream cursors of the measurement source chain.
//
// Version 3 makes the format incremental. State is stored as per-shard
// chunked records (the store's node→shard assignment, node i → shard
// i mod shards), which lifts the old one-frame n·rank ≤
// wire.MaxStateFloats bound — million-node states checkpoint shard by
// shard. A file is either a full base (every shard present) or a
// *delta* carrying only the shards whose version-vector entry advanced
// since the previous save, linked to its predecessor by that previous
// version vector (PrevVers). LoadChain resolves base + d001, d002, …
// into the newest consistent state; ChainWriter implements the
// base-every-K save policy.
//
// The format follows the wire package's codec discipline: fixed-layout
// big-endian fields, a (magic, version) header, and decoders that
// validate every declared length against hard protocol limits before
// allocating, so a truncated, corrupt or malicious file yields a typed
// error — never a panic or an attacker-sized allocation. Variable
// sections are read in bounded chunks, so allocation grows only as
// payload bytes actually arrive; the flat state array itself is sized
// by the validated geometry. A CRC-32 trailer detects torn or
// bit-rotted files.
//
// Writers should go through WriteFile/WriteDeltaFile, which write to a
// temporary file in the destination directory, sync it, and rename it
// into place — a crash mid-checkpoint leaves the previous chain intact.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"dmfsgd/internal/metrics"
	"dmfsgd/internal/wire"
)

// Format constants.
const (
	// Version is the checkpoint format version this package writes.
	// Version 3 adds a record-kind byte (full base vs delta) and stores
	// coordinates as per-shard chunked records, lifting the
	// n·rank ≤ wire.MaxStateFloats bound of versions 1 and 2. Read
	// accepts versions 1..3 and rejects anything else with
	// ErrBadVersion — a process must never guess at the meaning of a
	// future (or corrupted) layout.
	Version = 3

	// MaxCursorLayers bounds the source-chain cursor count.
	MaxCursorLayers = 64
	// MaxCursorVals bounds the values one cursor layer may carry.
	MaxCursorVals = 64
)

// Record kinds (version ≥ 3).
const (
	kindFull  = 0
	kindDelta = 1
)

// magic identifies a DMFSGD checkpoint file.
var magic = [4]byte{'D', 'M', 'F', 'C'}

// Errors returned by the decoder. Read wraps each with positional
// context; test with errors.Is.
var (
	ErrBadMagic   = errors.New("ckpt: not a DMFSGD checkpoint (bad magic)")
	ErrBadVersion = errors.New("ckpt: unsupported checkpoint version")
	ErrTruncated  = errors.New("ckpt: truncated checkpoint")
	ErrTooLarge   = errors.New("ckpt: field exceeds format limit")
	ErrInvalid    = errors.New("ckpt: inconsistent checkpoint")
	ErrChecksum   = errors.New("ckpt: checksum mismatch")
	// ErrKind is returned when a full checkpoint is expected but the
	// file holds a delta record, or vice versa.
	ErrKind = errors.New("ckpt: record kind mismatch")
	// ErrChain is returned by ApplyDelta when a delta does not extend
	// the base it is applied to: its previous version vector (or its
	// geometry, seed or hyper-parameters) disagrees with the base. A
	// stale delta left behind by an earlier chain fails exactly this
	// way, so LoadChain stops at the longest consistent prefix.
	ErrChain = errors.New("ckpt: delta does not extend this base")
)

// Checkpoint is one decoded training-state capture.
type Checkpoint struct {
	// N, Rank and Shards fix the coordinate geometry (the store's).
	N, Rank, Shards int
	// K is the neighbor count per node of the session that wrote the
	// checkpoint; 0 when the writer has no topology (a serving replica).
	K int
	// Steps is the cumulative successful-update counter.
	Steps uint64
	// Seed is the master seed of the run.
	Seed int64
	// Draws counts the draws consumed from the master sequential RNG
	// stream (0 when the writer does not track it).
	Draws uint64
	// WALSeq is the measurement-WAL sequence number already folded into
	// this state: on resume, WAL entries with seq ≤ WALSeq are skipped
	// (idempotent replay at the checkpoint barrier).
	WALSeq uint64
	// Incarnation is the writer's lineage counter at capture: a process
	// resuming from this checkpoint announces itself with a strictly
	// higher incarnation, so replication followers re-admit it as a new
	// lineage rather than comparing its restarted version counters
	// against the dead lineage's. 0 in version-1 files.
	Incarnation uint32
	// Tau is the classification threshold; Eta and Lambda the SGD
	// hyper-parameters; Loss the loss id; Metric the measured quantity.
	Tau, Eta, Lambda float64
	Loss             uint8
	Metric           uint8
	// NodeDraws holds the per-node epoch-stream draw counts (len 0 when
	// the parallel scheduler never ran, len N otherwise).
	NodeDraws []uint64
	// Cursors holds the stream positions of the measurement source
	// chain, one entry per cursor-bearing layer, outermost first.
	Cursors [][]uint64
	// Vers is the per-shard store version vector (len Shards).
	Vers []uint64
	// U and V are the flat row-major coordinates (len N·Rank each).
	U, V []float64
}

// Delta is one decoded incremental record: the full counter/config head
// of the state it captures (Head.U and Head.V are nil — a delta never
// carries the whole state) plus the coordinate blocks of exactly the
// shards whose version advanced since PrevVers, packed in within-shard
// node order. ApplyDelta folds it into the base it extends.
type Delta struct {
	Head     *Checkpoint
	PrevVers []uint64
	Blocks   []ShardBlock
}

// ShardBlock is one shard's packed coordinate rows: the shard owns
// nodes shard, shard+Shards, shard+2·Shards, …; U and V carry those
// rows in that order, Rank floats per row.
type ShardBlock struct {
	Shard int
	U, V  []float64
}

// Validate checks the checkpoint's geometry and section lengths against
// the format limits — everything Write enforces and Read guarantees.
func (c *Checkpoint) Validate() error {
	if err := c.validateHead(); err != nil {
		return err
	}
	if len(c.U) != c.N*c.Rank || len(c.V) != c.N*c.Rank {
		return fmt.Errorf("%w: flat arrays %d/%d, want %d", ErrInvalid, len(c.U), len(c.V), c.N*c.Rank)
	}
	for k := range c.U {
		if math.IsNaN(c.U[k]) || math.IsInf(c.U[k], 0) || math.IsNaN(c.V[k]) || math.IsInf(c.V[k], 0) {
			return fmt.Errorf("%w: non-finite coordinate at row %d", ErrInvalid, k/c.Rank)
		}
	}
	return nil
}

// validateHead checks everything but the flat state arrays — the part a
// delta record shares with a full checkpoint.
func (c *Checkpoint) validateHead() error {
	if c.N < 1 || c.N > wire.MaxNodes {
		return fmt.Errorf("%w: n=%d out of [1,%d]", ErrTooLarge, c.N, wire.MaxNodes)
	}
	if c.Rank < 1 || c.Rank > wire.MaxRank {
		return fmt.Errorf("%w: rank=%d out of [1,%d]", ErrTooLarge, c.Rank, wire.MaxRank)
	}
	if c.Shards < 1 || c.Shards > wire.MaxShards || c.Shards > c.N {
		return fmt.Errorf("%w: shards=%d out of [1,min(%d,n)]", ErrTooLarge, c.Shards, wire.MaxShards)
	}
	if c.K < 0 || c.K >= c.N {
		return fmt.Errorf("%w: k=%d out of [0,%d)", ErrInvalid, c.K, c.N)
	}
	if len(c.NodeDraws) != 0 && len(c.NodeDraws) != c.N {
		return fmt.Errorf("%w: %d node draw counts for %d nodes", ErrInvalid, len(c.NodeDraws), c.N)
	}
	if len(c.Cursors) > MaxCursorLayers {
		return fmt.Errorf("%w: %d cursor layers exceed %d", ErrTooLarge, len(c.Cursors), MaxCursorLayers)
	}
	for i, cur := range c.Cursors {
		if len(cur) > MaxCursorVals {
			return fmt.Errorf("%w: cursor layer %d carries %d values, limit %d", ErrTooLarge, i, len(cur), MaxCursorVals)
		}
	}
	if len(c.Vers) != c.Shards {
		return fmt.Errorf("%w: version vector of %d for %d shards", ErrInvalid, len(c.Vers), c.Shards)
	}
	for _, x := range []float64{c.Tau, c.Eta, c.Lambda} {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: non-finite hyper-parameter", ErrInvalid)
		}
	}
	return nil
}

// headerLenV1 is the byte length of the version-1 fixed header that
// follows the (magic, version) prefix; versions ≥ 2 append
// incarnation[4].
const headerLenV1 = 4 + 2 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 1 + 4
const headerLen = headerLenV1 + 4

// Write encodes c to w as a full (base) checkpoint. The layout is:
//
//	magic[4] version[2] kind[1]
//	n[4] rank[2] shards[2] k[4] steps[8] seed[8] draws[8] walSeq[8]
//	tau[8] eta[8] lambda[8] loss[1] metric[1] nodeDrawCount[4]
//	incarnation[4]
//	nodeDraws[8·count]
//	cursorLayers[2] { vals[2] val[8]·vals }·layers
//	vers[8·shards]
//	prevVers[8·shards]        (kind = delta only)
//	blocks[4] { shard[4] u[8·rows·rank] v[8·rows·rank] }·blocks
//	crc32[4]
//
// all big-endian; shard ids are strictly ascending; the CRC-32 (IEEE)
// covers every preceding byte. A full record carries every shard, a
// delta exactly the shards with vers[p] ≠ prevVers[p].
func Write(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if err := writeHead(mw, c, kindFull); err != nil {
		return err
	}
	var small [4]byte
	binary.BigEndian.PutUint32(small[:4], uint32(c.Shards))
	if _, err := mw.Write(small[:4]); err != nil {
		return err
	}
	for p := 0; p < c.Shards; p++ {
		if err := writeShardBlock(mw, c, p); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint32(small[:4], crc.Sum32())
	_, err := w.Write(small[:4])
	return err
}

// WriteDelta encodes the state c as an incremental record against a
// predecessor whose version vector was prevVers: only shards with
// c.Vers[p] ≠ prevVers[p] are written. A save where nothing advanced is
// a valid (tiny) delta of zero blocks — the counters still move.
func WriteDelta(w io.Writer, c *Checkpoint, prevVers []uint64) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(prevVers) != c.Shards {
		return fmt.Errorf("%w: previous version vector of %d for %d shards", ErrInvalid, len(prevVers), c.Shards)
	}
	changed := 0
	for p := range prevVers {
		if c.Vers[p] != prevVers[p] {
			changed++
		}
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if err := writeHead(mw, c, kindDelta); err != nil {
		return err
	}
	if err := writeUint64s(mw, prevVers); err != nil {
		return err
	}
	var small [4]byte
	binary.BigEndian.PutUint32(small[:4], uint32(changed))
	if _, err := mw.Write(small[:4]); err != nil {
		return err
	}
	for p := 0; p < c.Shards; p++ {
		if c.Vers[p] == prevVers[p] {
			continue
		}
		if err := writeShardBlock(mw, c, p); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint32(small[:4], crc.Sum32())
	_, err := w.Write(small[:4])
	return err
}

// writeHead writes the magic/version/kind prefix, the fixed header and
// the nodeDraws/cursors/vers sections shared by both record kinds.
func writeHead(mw io.Writer, c *Checkpoint, kind byte) error {
	buf := make([]byte, 0, 96)
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.N))
	buf = binary.BigEndian.AppendUint16(buf, uint16(c.Rank))
	buf = binary.BigEndian.AppendUint16(buf, uint16(c.Shards))
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.K))
	buf = binary.BigEndian.AppendUint64(buf, c.Steps)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Seed))
	buf = binary.BigEndian.AppendUint64(buf, c.Draws)
	buf = binary.BigEndian.AppendUint64(buf, c.WALSeq)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Tau))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Eta))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Lambda))
	buf = append(buf, c.Loss, c.Metric)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.NodeDraws)))
	buf = binary.BigEndian.AppendUint32(buf, c.Incarnation)
	if _, err := mw.Write(buf); err != nil {
		return err
	}
	if err := writeUint64s(mw, c.NodeDraws); err != nil {
		return err
	}
	var small [2]byte
	binary.BigEndian.PutUint16(small[:], uint16(len(c.Cursors)))
	if _, err := mw.Write(small[:]); err != nil {
		return err
	}
	for _, cur := range c.Cursors {
		binary.BigEndian.PutUint16(small[:], uint16(len(cur)))
		if _, err := mw.Write(small[:]); err != nil {
			return err
		}
		if err := writeUint64s(mw, cur); err != nil {
			return err
		}
	}
	return writeUint64s(mw, c.Vers)
}

// writeShardBlock writes shard p's id and its packed U and V rows
// gathered from the flat arrays.
func writeShardBlock(mw io.Writer, c *Checkpoint, p int) error {
	var small [4]byte
	binary.BigEndian.PutUint32(small[:], uint32(p))
	if _, err := mw.Write(small[:]); err != nil {
		return err
	}
	if err := writeShardSide(mw, c.U, c.N, c.Rank, c.Shards, p); err != nil {
		return err
	}
	return writeShardSide(mw, c.V, c.N, c.Rank, c.Shards, p)
}

// Read decodes one full checkpoint from r, validating every declared
// length before the corresponding allocation and verifying the CRC
// trailer. Versions 1..3 are accepted; a version-3 delta record yields
// ErrKind (use ReadDelta). Exactly the checkpoint's bytes are consumed;
// trailing bytes (when r is a file read to its end) are rejected as
// ErrInvalid.
func Read(r io.Reader) (*Checkpoint, error) {
	c, d, err := decode(r)
	if err != nil {
		return nil, err
	}
	if d != nil {
		return nil, fmt.Errorf("%w: delta record where a full checkpoint is expected", ErrKind)
	}
	return c, nil
}

// ReadDelta decodes one incremental record from r (version 3 only —
// earlier versions have no deltas). A full record yields ErrKind.
func ReadDelta(r io.Reader) (*Delta, error) {
	_, d, err := decode(r)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("%w: full checkpoint where a delta record is expected", ErrKind)
	}
	return d, nil
}

// decode reads one record of either kind. Exactly one of the returns is
// non-nil on success.
func decode(r io.Reader) (*Checkpoint, *Delta, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var pre [7]byte
	if _, err := io.ReadFull(tr, pre[:6]); err != nil {
		return nil, nil, truncated(err)
	}
	if [4]byte(pre[:4]) != magic {
		return nil, nil, ErrBadMagic
	}
	v := binary.BigEndian.Uint16(pre[4:])
	if v < 1 || v > Version {
		return nil, nil, fmt.Errorf("%w: version %d, this build reads 1..%d", ErrBadVersion, v, Version)
	}
	kind := byte(kindFull)
	if v >= 3 {
		if _, err := io.ReadFull(tr, pre[6:7]); err != nil {
			return nil, nil, truncated(err)
		}
		kind = pre[6]
		if kind != kindFull && kind != kindDelta {
			return nil, nil, fmt.Errorf("%w: unknown record kind %d", ErrInvalid, kind)
		}
	}
	hdrLen := headerLen
	if v == 1 {
		hdrLen = headerLenV1
	}
	var hdrBuf [headerLen]byte
	hdr := hdrBuf[:hdrLen]
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, nil, truncated(err)
	}
	c := &Checkpoint{
		N:      int(binary.BigEndian.Uint32(hdr[0:])),
		Rank:   int(binary.BigEndian.Uint16(hdr[4:])),
		Shards: int(binary.BigEndian.Uint16(hdr[6:])),
		K:      int(binary.BigEndian.Uint32(hdr[8:])),
		Steps:  binary.BigEndian.Uint64(hdr[12:]),
		Seed:   int64(binary.BigEndian.Uint64(hdr[20:])),
		Draws:  binary.BigEndian.Uint64(hdr[28:]),
		WALSeq: binary.BigEndian.Uint64(hdr[36:]),
		Tau:    math.Float64frombits(binary.BigEndian.Uint64(hdr[44:])),
		Eta:    math.Float64frombits(binary.BigEndian.Uint64(hdr[52:])),
		Lambda: math.Float64frombits(binary.BigEndian.Uint64(hdr[60:])),
		Loss:   hdr[68],
		Metric: hdr[69],
	}
	// Geometry limits before any sized allocation. Versions ≤ 2 store
	// the state as one flat section and keep their historical
	// n·rank ≤ wire.MaxStateFloats bound; version 3 is chunked per
	// shard and bounded by MaxNodes·MaxRank alone.
	if c.N < 1 || c.N > wire.MaxNodes ||
		c.Rank < 1 || c.Rank > wire.MaxRank ||
		c.Shards < 1 || c.Shards > wire.MaxShards || c.Shards > c.N ||
		c.K < 0 || c.K >= c.N {
		return nil, nil, fmt.Errorf("%w: geometry n=%d rank=%d shards=%d k=%d", ErrTooLarge, c.N, c.Rank, c.Shards, c.K)
	}
	if v < 3 && uint64(c.N)*uint64(c.Rank) > wire.MaxStateFloats {
		return nil, nil, fmt.Errorf("%w: n·rank=%d exceeds %d", ErrTooLarge, uint64(c.N)*uint64(c.Rank), wire.MaxStateFloats)
	}
	nodeDraws := int(binary.BigEndian.Uint32(hdr[70:]))
	if nodeDraws != 0 && nodeDraws != c.N {
		return nil, nil, fmt.Errorf("%w: %d node draw counts for %d nodes", ErrInvalid, nodeDraws, c.N)
	}
	if v >= 2 {
		c.Incarnation = binary.BigEndian.Uint32(hdr[74:])
	}

	var err error
	if c.NodeDraws, err = readUint64s(tr, nodeDraws); err != nil {
		return nil, nil, err
	}
	var small [4]byte
	if _, err := io.ReadFull(tr, small[:2]); err != nil {
		return nil, nil, truncated(err)
	}
	layers := int(binary.BigEndian.Uint16(small[:2]))
	if layers > MaxCursorLayers {
		return nil, nil, fmt.Errorf("%w: %d cursor layers exceed %d", ErrTooLarge, layers, MaxCursorLayers)
	}
	if layers > 0 {
		c.Cursors = make([][]uint64, layers)
		for i := range c.Cursors {
			if _, err := io.ReadFull(tr, small[:2]); err != nil {
				return nil, nil, truncated(err)
			}
			vals := int(binary.BigEndian.Uint16(small[:2]))
			if vals > MaxCursorVals {
				return nil, nil, fmt.Errorf("%w: cursor layer %d carries %d values, limit %d", ErrTooLarge, i, vals, MaxCursorVals)
			}
			if c.Cursors[i], err = readUint64s(tr, vals); err != nil {
				return nil, nil, err
			}
			if c.Cursors[i] == nil {
				c.Cursors[i] = []uint64{}
			}
		}
	}
	if c.Vers, err = readUint64s(tr, c.Shards); err != nil {
		return nil, nil, err
	}

	var d *Delta
	switch {
	case kind == kindDelta:
		d = &Delta{Head: c}
		if d.PrevVers, err = readUint64s(tr, c.Shards); err != nil {
			return nil, nil, err
		}
		changed := 0
		for p := range c.Vers {
			if c.Vers[p] != d.PrevVers[p] {
				changed++
			}
		}
		if _, err := io.ReadFull(tr, small[:4]); err != nil {
			return nil, nil, truncated(err)
		}
		if got := int(binary.BigEndian.Uint32(small[:4])); got != changed {
			return nil, nil, fmt.Errorf("%w: %d blocks for %d advanced shards", ErrInvalid, got, changed)
		}
		if changed > 0 {
			d.Blocks = make([]ShardBlock, 0, changed)
		}
		prev := -1
		for len(d.Blocks) < changed {
			if _, err := io.ReadFull(tr, small[:4]); err != nil {
				return nil, nil, truncated(err)
			}
			p := int(binary.BigEndian.Uint32(small[:4]))
			if p >= c.Shards || p <= prev {
				return nil, nil, fmt.Errorf("%w: block shard %d out of order (after %d, of %d)", ErrInvalid, p, prev, c.Shards)
			}
			if c.Vers[p] == d.PrevVers[p] {
				return nil, nil, fmt.Errorf("%w: block for unadvanced shard %d", ErrInvalid, p)
			}
			prev = p
			want := wire.ShardNodes(c.N, p, c.Shards) * c.Rank
			b := ShardBlock{Shard: p}
			if b.U, err = readFloats(tr, want); err != nil {
				return nil, nil, err
			}
			if b.V, err = readFloats(tr, want); err != nil {
				return nil, nil, err
			}
			d.Blocks = append(d.Blocks, b)
		}
	case v >= 3:
		if _, err := io.ReadFull(tr, small[:4]); err != nil {
			return nil, nil, truncated(err)
		}
		if got := int(binary.BigEndian.Uint32(small[:4])); got != c.Shards {
			return nil, nil, fmt.Errorf("%w: %d blocks in a full record of %d shards", ErrInvalid, got, c.Shards)
		}
		c.U = make([]float64, c.N*c.Rank)
		c.V = make([]float64, c.N*c.Rank)
		for p := 0; p < c.Shards; p++ {
			if _, err := io.ReadFull(tr, small[:4]); err != nil {
				return nil, nil, truncated(err)
			}
			if got := int(binary.BigEndian.Uint32(small[:4])); got != p {
				return nil, nil, fmt.Errorf("%w: block shard %d where %d is expected", ErrInvalid, got, p)
			}
			if err := readShardSide(tr, c.U, c.N, c.Rank, c.Shards, p); err != nil {
				return nil, nil, err
			}
			if err := readShardSide(tr, c.V, c.N, c.Rank, c.Shards, p); err != nil {
				return nil, nil, err
			}
		}
	default:
		if c.U, err = readFloats(tr, c.N*c.Rank); err != nil {
			return nil, nil, err
		}
		if c.V, err = readFloats(tr, c.N*c.Rank); err != nil {
			return nil, nil, err
		}
	}

	sum := crc.Sum32() // everything up to (not including) the trailer
	if _, err := io.ReadFull(r, small[:4]); err != nil {
		return nil, nil, truncated(err)
	}
	if binary.BigEndian.Uint32(small[:4]) != sum {
		return nil, nil, ErrChecksum
	}
	if n, _ := r.Read(small[:1]); n != 0 {
		return nil, nil, fmt.Errorf("%w: trailing bytes after checkpoint", ErrInvalid)
	}
	if d != nil {
		if err := d.validate(); err != nil {
			return nil, nil, err
		}
		return nil, d, nil
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	return c, nil, nil
}

// validate checks a decoded delta: head consistency plus finite block
// values (the full-record finite sweep lives in Checkpoint.Validate).
func (d *Delta) validate() error {
	if err := d.Head.validateHead(); err != nil {
		return err
	}
	for _, b := range d.Blocks {
		for k := range b.U {
			if math.IsNaN(b.U[k]) || math.IsInf(b.U[k], 0) || math.IsNaN(b.V[k]) || math.IsInf(b.V[k], 0) {
				return fmt.Errorf("%w: non-finite coordinate in shard %d block", ErrInvalid, b.Shard)
			}
		}
	}
	return nil
}

// ApplyDelta folds d into base in place: the delta must extend exactly
// this base — same geometry, seed, topology and hyper-parameters, and a
// PrevVers equal to the base's version vector — else ErrChain. On
// success the base carries the delta's counters, cursors and version
// vector, with the advanced shards' coordinates overwritten.
func ApplyDelta(base *Checkpoint, d *Delta) error {
	h := d.Head
	if h.N != base.N || h.Rank != base.Rank || h.Shards != base.Shards {
		return fmt.Errorf("%w: geometry n=%d rank=%d shards=%d over base n=%d rank=%d shards=%d",
			ErrChain, h.N, h.Rank, h.Shards, base.N, base.Rank, base.Shards)
	}
	if h.K != base.K || h.Seed != base.Seed || h.Loss != base.Loss || h.Metric != base.Metric ||
		h.Tau != base.Tau || h.Eta != base.Eta || h.Lambda != base.Lambda {
		return fmt.Errorf("%w: run configuration differs from the base", ErrChain)
	}
	if h.Steps < base.Steps {
		return fmt.Errorf("%w: steps regress %d → %d", ErrChain, base.Steps, h.Steps)
	}
	for p := range base.Vers {
		if d.PrevVers[p] != base.Vers[p] {
			return fmt.Errorf("%w: shard %d version %d, delta expects %d", ErrChain, p, base.Vers[p], d.PrevVers[p])
		}
	}
	for _, b := range d.Blocks {
		rows := wire.ShardNodes(base.N, b.Shard, base.Shards)
		if b.Shard < 0 || b.Shard >= base.Shards || len(b.U) != rows*base.Rank || len(b.V) != rows*base.Rank {
			return fmt.Errorf("%w: malformed block for shard %d", ErrInvalid, b.Shard)
		}
	}
	for _, b := range d.Blocks {
		rows := wire.ShardNodes(base.N, b.Shard, base.Shards)
		for li := 0; li < rows; li++ {
			node := b.Shard + li*base.Shards
			copy(base.U[node*base.Rank:(node+1)*base.Rank], b.U[li*base.Rank:])
			copy(base.V[node*base.Rank:(node+1)*base.Rank], b.V[li*base.Rank:])
		}
	}
	base.Steps = h.Steps
	base.Draws = h.Draws
	base.WALSeq = h.WALSeq
	base.Incarnation = h.Incarnation
	base.NodeDraws = h.NodeDraws
	base.Cursors = h.Cursors
	copy(base.Vers, h.Vers)
	return nil
}

// DeltaPath names the i-th delta (i ≥ 1) of the chain rooted at the
// base checkpoint path: "<path>.d001", "<path>.d002", …
func DeltaPath(path string, i int) string {
	return fmt.Sprintf("%s.d%03d", path, i)
}

// WriteFile durably writes c to path: temp file in the same directory,
// fsync, atomic rename. A crash mid-write leaves any previous file at
// path intact.
func WriteFile(path string, c *Checkpoint) error {
	start := startTimer()
	size, err := writeFileAtomic(path, func(w io.Writer) error { return Write(w, c) })
	if err != nil {
		return err
	}
	dur := sinceDur(start)
	mSaves.Inc()
	mSaveBytes.Add(uint64(size))
	mSaveSec.Observe(dur.Seconds())
	metrics.Emit("ckpt_save", dur,
		metrics.KV{K: "bytes", V: size},
		metrics.KV{K: "steps", V: int64(c.Steps)})
	return nil
}

// WriteDeltaFile durably writes the delta of c against prevVers to
// path, with the same temp/fsync/rename discipline as WriteFile.
func WriteDeltaFile(path string, c *Checkpoint, prevVers []uint64) error {
	start := startTimer()
	size, err := writeFileAtomic(path, func(w io.Writer) error { return WriteDelta(w, c, prevVers) })
	if err != nil {
		return err
	}
	dur := sinceDur(start)
	mDeltaSaves.Inc()
	mSaveBytes.Add(uint64(size))
	mSaveSec.Observe(dur.Seconds())
	metrics.Emit("ckpt_delta_save", dur,
		metrics.KV{K: "bytes", V: size},
		metrics.KV{K: "steps", V: int64(c.Steps)})
	return nil
}

// writeFileAtomic streams enc to a temp file in path's directory,
// syncs, renames into place, and syncs the directory so the rename
// itself survives a power cut (the checkpoint-then-truncate ordering of
// SaveCheckpoint depends on the new directory entry being durable).
func writeFileAtomic(path string, enc func(io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := enc(f); err != nil {
		return fail(err)
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if d, err := os.Open(dir); err == nil {
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return 0, syncErr
		}
	}
	return size, nil
}

// ReadFile reads the full checkpoint at path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Read(f)
	if err == nil {
		mRestores.Inc()
	}
	return c, err
}

// ReadDeltaFile reads the delta record at path.
func ReadDeltaFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDelta(f)
}

// LoadChain resolves the checkpoint chain rooted at path: the full base
// plus every delta d001, d002, … that extends it, stopping at the first
// gap, decode failure or linkage break (a stale delta from an earlier
// chain fails its PrevVers check and is ignored — longest valid
// prefix). Returns the resolved state and the number of deltas folded
// in. A missing base is reported as the underlying os error
// (errors.Is(err, fs.ErrNotExist)).
func LoadChain(path string) (*Checkpoint, int, error) {
	c, err := ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	for {
		d, err := ReadDeltaFile(DeltaPath(path, n+1))
		if err != nil {
			break
		}
		if err := ApplyDelta(c, d); err != nil {
			break
		}
		n++
	}
	return c, n, nil
}

// ChainWriter implements the base-every-K save policy over a
// checkpoint chain: the first save (and every save after baseEvery
// deltas have accumulated, and any save whose geometry changed) rewrites
// the full base and prunes the now-stale deltas; every other save
// appends a delta carrying only the shards that advanced since the
// previous save. baseEvery ≤ 0 writes a full base every time — the
// pre-v3 behavior.
type ChainWriter struct {
	path      string
	baseEvery int
	prevVers  []uint64 // version vector of the last save; nil → base next
	deltas    int      // deltas since the current base
}

// NewChainWriter returns a writer for the chain rooted at path. Resume
// primes it against an existing on-disk chain.
func NewChainWriter(path string, baseEvery int) *ChainWriter {
	return &ChainWriter{path: path, baseEvery: baseEvery}
}

// Path returns the base checkpoint path.
func (cw *ChainWriter) Path() string { return cw.path }

// Resume primes the writer against a chain already on disk, as resolved
// by LoadChain: vers is the resolved state's version vector and deltas
// the chain length. The next save extends that chain.
func (cw *ChainWriter) Resume(vers []uint64, deltas int) {
	cw.prevVers = append([]uint64(nil), vers...)
	cw.deltas = deltas
}

// Save writes c to the chain under the policy and reports whether it
// went out as a delta. After a base save, stale delta files from the
// previous chain epoch are deleted; a crash between those two steps is
// safe — LoadChain rejects the orphans on their PrevVers linkage.
func (cw *ChainWriter) Save(c *Checkpoint) (delta bool, err error) {
	if cw.baseEvery > 0 && cw.prevVers != nil && len(cw.prevVers) == len(c.Vers) && cw.deltas < cw.baseEvery {
		if err := WriteDeltaFile(DeltaPath(cw.path, cw.deltas+1), c, cw.prevVers); err != nil {
			return false, err
		}
		cw.deltas++
		cw.prevVers = append(cw.prevVers[:0], c.Vers...)
		return true, nil
	}
	if err := WriteFile(cw.path, c); err != nil {
		return false, err
	}
	removeDeltas(cw.path, 1)
	cw.deltas = 0
	cw.prevVers = append([]uint64(nil), c.Vers...)
	return false, nil
}

// removeDeltas deletes the contiguous run of delta files starting at
// index from. Chains are contiguous by construction, so stopping at the
// first missing index removes everything a future LoadChain could see.
func removeDeltas(path string, from int) {
	for i := from; ; i++ {
		if err := os.Remove(DeltaPath(path, i)); err != nil {
			return
		}
	}
}

// truncated maps short-read errors onto the package sentinel.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncated
	}
	return err
}

// chunkBytes bounds one read/convert step of the bulk sections, so a
// short input declaring a huge section allocates at most one chunk
// beyond the bytes that actually arrived.
const chunkBytes = 64 << 10

// readUint64s reads count big-endian uint64s in bounded chunks.
func readUint64s(r io.Reader, count int) ([]uint64, error) {
	if count == 0 {
		return nil, nil
	}
	out := make([]uint64, 0, min(count, chunkBytes/8))
	var buf [chunkBytes]byte
	for len(out) < count {
		want := min((count-len(out))*8, chunkBytes)
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, truncated(err)
		}
		for off := 0; off < want; off += 8 {
			out = append(out, binary.BigEndian.Uint64(buf[off:]))
		}
	}
	return out, nil
}

// readFloats reads count big-endian float64s in bounded chunks.
func readFloats(r io.Reader, count int) ([]float64, error) {
	if count == 0 {
		return nil, nil
	}
	out := make([]float64, 0, min(count, chunkBytes/8))
	var buf [chunkBytes]byte
	for len(out) < count {
		want := min((count-len(out))*8, chunkBytes)
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, truncated(err)
		}
		for off := 0; off < want; off += 8 {
			out = append(out, math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
		}
	}
	return out, nil
}

// readShardSide reads one shard's packed rows·rank floats in bounded
// chunks and scatters them into the flat row-major array at the shard's
// strided node rows (node = shard + li·shards).
func readShardSide(r io.Reader, flat []float64, n, rank, shards, shard int) error {
	rows := wire.ShardNodes(n, shard, shards)
	var buf [chunkBytes]byte
	li, j := 0, 0 // row within shard, column within row
	total := rows * rank
	for idx := 0; idx < total; {
		want := min((total-idx)*8, chunkBytes)
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return truncated(err)
		}
		for off := 0; off < want; off += 8 {
			flat[(shard+li*shards)*rank+j] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
			if j++; j == rank {
				j = 0
				li++
			}
			idx++
		}
	}
	return nil
}

// writeShardSide gathers one shard's strided rows from the flat array
// and writes them packed, in bounded chunks.
func writeShardSide(w io.Writer, flat []float64, n, rank, shards, shard int) error {
	rows := wire.ShardNodes(n, shard, shards)
	var buf [chunkBytes]byte
	li, j := 0, 0
	total := rows * rank
	for idx := 0; idx < total; {
		want := min((total-idx)*8, chunkBytes)
		for off := 0; off < want; off += 8 {
			binary.BigEndian.PutUint64(buf[off:], math.Float64bits(flat[(shard+li*shards)*rank+j]))
			if j++; j == rank {
				j = 0
				li++
			}
			idx++
		}
		if _, err := w.Write(buf[:want]); err != nil {
			return err
		}
	}
	return nil
}

// writeUint64s writes vs as big-endian uint64s in bounded chunks.
func writeUint64s(w io.Writer, vs []uint64) error {
	var buf [chunkBytes]byte
	for len(vs) > 0 {
		n := min(len(vs), chunkBytes/8)
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(buf[8*i:], vs[i])
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vs = vs[n:]
	}
	return nil
}
