//go:build race

package runtime

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// timing tests skip themselves under the detector: its instrumentation
// slows the node loops by an order of magnitude, so elapsed-time RTT
// measurements reflect scheduler saturation, not the injected delays.
const raceEnabled = true
