// Package runtime is the concurrent, message-passing implementation of the
// DMFSGD protocol: each node is a goroutine owning nothing but its two
// rank-r coordinate vectors, a neighbor list, and a transport endpoint.
// Nodes exchange the wire messages of Algorithms 1 and 2 and update their
// coordinates with the rules of package sgd.
//
// This is the "fully decentralized" system the paper claims: there is no
// central component, no landmark, and no materialized matrix anywhere in
// this package. The sequential driver in package sim exists only to make
// experiments deterministic; the runtime is the deployable artifact and
// works identically over the in-memory transport (tests, simulations) and
// UDP (cmd/dmfnode, examples/livenet).
//
// In-process swarms keep their per-node coordinates in the sharded
// engine.Store shared with package sim: each node holds an engine.Ref into
// the swarm-wide store and synchronizes on its shard's lock, which lets
// evaluation snapshot thousands of nodes with P lock acquisitions instead
// of n and shares one execution substrate across both drivers. Standalone
// nodes (UDP deployments) get a private single-slot store.
package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

// RTTSource measures round-trip times (the "ping" of Algorithm 1).
type RTTSource interface {
	// MeasureRTT returns the measured RTT in ms from node self to peer.
	MeasureRTT(self, peer int) (float64, bool)
}

// ABWClassSource measures ABW classes at the target (Algorithm 2 step 2).
type ABWClassSource interface {
	// MeasureClass returns the class the target infers for the path
	// sender→target when probed at the given rate.
	MeasureClass(sender, target int, rate float64) (classify.Class, bool)
}

// Config parameterizes one node.
type Config struct {
	// ID is this node's identifier, unique within the swarm.
	ID uint32
	// Metric selects Algorithm 1 (RTT) or Algorithm 2 (ABW).
	Metric dataset.Metric
	// SGD carries rank, η, λ and the loss.
	SGD sgd.Config
	// Tau is the classification threshold: the ping cutoff for RTT, the
	// probe train rate for ABW.
	Tau float64
	// Neighbors maps neighbor IDs to transport addresses. Per §5.3 each
	// node picks k random neighbors; the swarm constructor does that.
	Neighbors map[uint32]string
	// ProbeInterval is the time between outgoing probes (one random
	// neighbor each tick).
	ProbeInterval time.Duration
	// RTT supplies RTT measurements. If nil for an RTT node, the node
	// falls back to wall-clock timing of the probe exchange divided by
	// WallClockUnit (real deployments).
	RTT RTTSource
	// ABW supplies class measurements for ABW targets. Required for ABW
	// nodes.
	ABW ABWClassSource
	// WallClockUnit is the real duration representing one millisecond of
	// network time when measuring RTT by wall clock (default 1ms, i.e.
	// real time).
	WallClockUnit time.Duration
	// AllowDynamic permits starting with an empty neighbor set, to be
	// filled later through AddNeighbor (UDP deployments discover peers via
	// the membership protocol).
	AllowDynamic bool
	// MaxNeighbors caps the neighbor set size for dynamic membership
	// (0 = unlimited). The paper's k.
	MaxNeighbors int
	// Coords is this node's slot in a shared sharded coordinate store
	// (swarm deployments). The zero Ref makes the node allocate a private
	// single-slot store (standalone/UDP deployments).
	Coords engine.Ref
	// Observe, when non-nil, is invoked from the node goroutine with
	// every RTT quantity the node measures (self, peer, value in ms),
	// before the coordinate update fires — the capture tap the ingestion
	// layer's SwarmSource hangs off. Implementations must be fast and
	// never block. ABW nodes carry no quantity on the wire (targets infer
	// classes), so the tap stays silent for them.
	Observe func(self, peer int, value float64)
	// Seed drives this node's private randomness (neighbor choice order,
	// coordinate init).
	Seed int64
}

func (c Config) validate() error {
	if err := c.SGD.Validate(); err != nil {
		return err
	}
	if len(c.Neighbors) == 0 && !c.AllowDynamic {
		return fmt.Errorf("runtime: node %d has no neighbors", c.ID)
	}
	if c.ProbeInterval <= 0 {
		return fmt.Errorf("runtime: node %d has no probe interval", c.ID)
	}
	if c.Metric == dataset.ABW && c.ABW == nil {
		return fmt.Errorf("runtime: ABW node %d needs an ABWClassSource", c.ID)
	}
	return nil
}

// Stats counts a node's protocol activity. Retrieve with Node.Stats.
type Stats struct {
	// ProbesSent counts outgoing probe requests.
	ProbesSent int
	// RepliesReceived counts matching probe replies.
	RepliesReceived int
	// Updates counts successful coordinate updates.
	Updates int
	// Rejected counts updates refused (NaN-poisoned peers, bad classes).
	Rejected int
	// Stale counts replies that matched no pending probe (late, duplicated
	// or forged).
	Stale int
	// DecodeErrors counts undecodable datagrams.
	DecodeErrors int
}

// pendingProbe tracks an outstanding request.
type pendingProbe struct {
	peer   uint32
	sentAt time.Time
}

// Node is one DMFSGD participant.
type Node struct {
	cfg Config
	tr  transport.Transport
	rng *rand.Rand
	// ref is the node's slot in the (shared or private) coordinate store;
	// coordinate reads/writes synchronize on the owning shard's lock.
	ref engine.Ref

	mu    sync.Mutex
	stats Stats
	// neighborIDs and neighborAddrs are guarded by mu: dynamic membership
	// (AddNeighbor) may race with the node loop's probe().
	neighborIDs   []uint32
	neighborAddrs map[uint32]string

	pending map[uint32]pendingProbe
	seq     uint32

	// scratch decode targets, reused across packets (single handler
	// goroutine), in the spirit of preallocated decoding layers.
	req wire.ProbeRequest
	rep wire.ProbeReply
}

// NewNode builds a node bound to the transport endpoint.
func NewNode(cfg Config, tr transport.Transport) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.WallClockUnit <= 0 {
		cfg.WallClockUnit = time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Draw initial coordinates first (before any probe randomness) so the
	// node's stream is identical whether or not it shares a swarm store.
	init := sgd.NewCoordinates(cfg.SGD.Rank, rng)
	if !cfg.Coords.Valid() {
		cfg.Coords = engine.NewSoloStore(cfg.SGD.Rank).Ref(0)
	}
	cfg.Coords.Set(init)
	ids := make([]uint32, 0, len(cfg.Neighbors))
	addrs := make(map[uint32]string, len(cfg.Neighbors))
	for id, addr := range cfg.Neighbors {
		ids = append(ids, id)
		addrs[id] = addr
	}
	// Deterministic order for the rng to act on.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return &Node{
		cfg:           cfg,
		tr:            tr,
		rng:           rng,
		ref:           cfg.Coords,
		neighborIDs:   ids,
		neighborAddrs: addrs,
		pending:       make(map[uint32]pendingProbe),
	}, nil
}

// AddNeighbor inserts or updates a neighbor at runtime (membership layer).
// Returns false when the set is full (MaxNeighbors reached) and the ID is
// new, honoring the paper's fixed-k architecture.
func (n *Node) AddNeighbor(id uint32, addr string) bool {
	if id == n.cfg.ID {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.neighborAddrs[id]; ok {
		n.neighborAddrs[id] = addr
		return true
	}
	if n.cfg.MaxNeighbors > 0 && len(n.neighborIDs) >= n.cfg.MaxNeighbors {
		return false
	}
	n.neighborIDs = append(n.neighborIDs, id)
	n.neighborAddrs[id] = addr
	return true
}

// NeighborCount returns the current neighbor set size.
func (n *Node) NeighborCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.neighborIDs)
}

// ID returns the node's identifier.
func (n *Node) ID() uint32 { return n.cfg.ID }

// Coordinates returns a snapshot copy of the node's current coordinates.
func (n *Node) Coordinates() *sgd.Coordinates {
	return n.ref.Snapshot()
}

// Ref returns the node's slot in the coordinate store.
func (n *Node) Ref() engine.Ref { return n.ref }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Run executes the node loop until ctx is cancelled or the transport
// closes. It owns the transport's receive side; callers must not read it.
func (n *Node) Run(ctx context.Context) {
	ticker := time.NewTicker(n.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case pkt, ok := <-n.tr.Recv():
			if !ok {
				return
			}
			n.handle(pkt)
		case <-ticker.C:
			n.probe()
		}
	}
}

// probe sends one probe request to a uniformly random neighbor (§5.3:
// "randomly probes one of its neighbors at each time").
func (n *Node) probe() {
	n.mu.Lock()
	if len(n.neighborIDs) == 0 {
		n.mu.Unlock()
		return // dynamic node still waiting for membership
	}
	peer := n.neighborIDs[n.rng.Intn(len(n.neighborIDs))]
	addr := n.neighborAddrs[peer]
	nNbrs := len(n.neighborIDs)
	n.mu.Unlock()
	n.seq++
	req := wire.ProbeRequest{Seq: n.seq, From: n.cfg.ID}
	if n.cfg.Metric == dataset.ABW {
		// Algorithm 2 step 1: the probe carries uᵢ and the train rate τ.
		req.Rate = n.cfg.Tau
		n.ref.View(func(c *sgd.Coordinates) {
			req.SenderU = append(req.SenderU[:0], c.U...)
		})
	}
	buf, err := wire.AppendProbeRequest(nil, &req)
	if err != nil {
		return
	}
	n.pending[n.seq] = pendingProbe{peer: peer, sentAt: time.Now()}
	// Cap the pending table: stale entries from lost replies must not
	// accumulate forever.
	if len(n.pending) > 4*nNbrs+16 {
		for s := range n.pending {
			if s != n.seq {
				delete(n.pending, s)
				break
			}
		}
	}
	if err := n.tr.Send(addr, buf); err != nil {
		delete(n.pending, n.seq)
		return
	}
	n.mu.Lock()
	n.stats.ProbesSent++
	n.mu.Unlock()
}

// handle dispatches one inbound datagram.
func (n *Node) handle(pkt transport.Packet) {
	typ, err := wire.PeekType(pkt.Data)
	if err != nil {
		n.mu.Lock()
		n.stats.DecodeErrors++
		n.mu.Unlock()
		return
	}
	switch typ {
	case wire.TypeProbeRequest:
		if err := wire.DecodeProbeRequest(pkt.Data, &n.req); err != nil {
			n.countDecodeError()
			return
		}
		n.handleRequest(pkt.From, &n.req)
	case wire.TypeProbeReply:
		if err := wire.DecodeProbeReply(pkt.Data, &n.rep); err != nil {
			n.countDecodeError()
			return
		}
		n.handleReply(&n.rep)
	default:
		// Join/Peers are handled by the membership layer (cmd/dmfnode);
		// the core node ignores them.
	}
}

func (n *Node) countDecodeError() {
	n.mu.Lock()
	n.stats.DecodeErrors++
	n.mu.Unlock()
}

// handleRequest answers a probe.
func (n *Node) handleRequest(from string, req *wire.ProbeRequest) {
	rep := wire.ProbeReply{Seq: req.Seq, From: n.cfg.ID}
	switch n.cfg.Metric {
	case dataset.RTT:
		// Algorithm 1 step 2: reply with both coordinates.
		n.ref.View(func(c *sgd.Coordinates) {
			rep.U = append(rep.U[:0], c.U...)
			rep.V = append(rep.V[:0], c.V...)
		})
	case dataset.ABW:
		// Algorithm 2 steps 2-4: infer the class of sender→self, reply
		// with (x, vⱼ) *then* update vⱼ (the reply carries the pre-update
		// coordinates, as step 3 precedes step 4). Both happen under one
		// shard-lock hold so no concurrent update can slip between them.
		c, ok := n.cfg.ABW.MeasureClass(int(req.From), int(n.cfg.ID), req.Rate)
		if !ok {
			return // unmeasurable pair: the probe yields nothing
		}
		rep.Class = int8(c)
		updated := n.ref.Update(func(co *sgd.Coordinates) bool {
			rep.V = append(rep.V[:0], co.V...)
			return n.cfg.SGD.UpdateABWTarget(co, req.SenderU, c.Value())
		})
		n.countUpdate(updated)
	}
	if buf, err := wire.AppendProbeReply(nil, &rep); err == nil {
		_ = n.tr.Send(from, buf)
	}
}

// handleReply completes a measurement exchange.
func (n *Node) handleReply(rep *wire.ProbeReply) {
	p, ok := n.pending[rep.Seq]
	if !ok || p.peer != rep.From {
		n.mu.Lock()
		n.stats.Stale++
		n.mu.Unlock()
		return
	}
	delete(n.pending, rep.Seq)
	n.mu.Lock()
	n.stats.RepliesReceived++
	n.mu.Unlock()

	switch n.cfg.Metric {
	case dataset.RTT:
		// Algorithm 1 steps 3-4: infer the RTT, classify at τ, update both
		// coordinate vectors.
		var rtt float64
		if n.cfg.RTT != nil {
			v, ok := n.cfg.RTT.MeasureRTT(int(n.cfg.ID), int(rep.From))
			if !ok {
				return
			}
			rtt = v
		} else {
			rtt = float64(time.Since(p.sentAt)) / float64(n.cfg.WallClockUnit)
		}
		if n.cfg.Observe != nil {
			n.cfg.Observe(int(n.cfg.ID), int(rep.From), rtt)
		}
		x := classify.Of(dataset.RTT, rtt, n.cfg.Tau).Value()
		n.countUpdate(n.ref.Update(func(c *sgd.Coordinates) bool {
			return n.cfg.SGD.UpdateRTT(c, rep.U, rep.V, x)
		}))
	case dataset.ABW:
		// Algorithm 2 step 5: update uᵢ with the class inferred by the
		// target and its vⱼ.
		if rep.Class != 1 && rep.Class != -1 {
			n.mu.Lock()
			n.stats.Rejected++
			n.mu.Unlock()
			return
		}
		n.countUpdate(n.ref.Update(func(c *sgd.Coordinates) bool {
			return n.cfg.SGD.UpdateABWSender(c, rep.V, float64(rep.Class))
		}))
	}
}

// countUpdate tallies one coordinate-update outcome.
func (n *Node) countUpdate(updated bool) {
	n.mu.Lock()
	if updated {
		n.stats.Updates++
	} else {
		n.stats.Rejected++
	}
	n.mu.Unlock()
}
