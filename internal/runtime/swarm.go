package runtime

import (
	"context"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/oracle"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
)

// SwarmConfig parameterizes an in-process swarm of runtime nodes wired
// over the in-memory transport, with measurements served by dataset-backed
// oracles. This is the concurrent counterpart of sim.Driver.
type SwarmConfig struct {
	// Dataset supplies ground truth (topology, metric, values).
	Dataset *dataset.Dataset
	// SGD carries the factorization hyper-parameters.
	SGD sgd.Config
	// K is the neighbor count per node.
	K int
	// Tau is the classification threshold.
	Tau float64
	// ProbeInterval is each node's probing period (default 1ms, giving
	// roughly n probes per millisecond across the swarm).
	ProbeInterval time.Duration
	// MeasurementNoise is the lognormal sigma of RTT measurements and the
	// relative width of ABW near-τ errors. 0 = exact tools.
	MeasurementNoise float64
	// DropRate / DupRate inject transport-level failures.
	DropRate, DupRate float64
	// NetworkDelay, when true, delivers messages with a one-way delay of
	// RTT/2 scaled by WallClockUnit, and RTT nodes measure by wall clock
	// instead of consulting the oracle — the full "real" pipeline.
	NetworkDelay bool
	// WallClockUnit is the real duration of one network millisecond when
	// NetworkDelay is set (default 50µs: a 100ms path takes 5ms of real
	// time per round trip).
	WallClockUnit time.Duration
	// Shards partitions the swarm-wide coordinate store. 0 picks a default
	// that keeps shard-lock contention low (min(n, max(8, 2·GOMAXPROCS))).
	Shards int
	// Workers bounds the goroutines used by evaluation (0 = GOMAXPROCS).
	Workers int
	// Seed drives all randomness.
	Seed int64
}

// defaultShards sizes the store partition for an n-node swarm.
func defaultShards(n int) int {
	p := 2 * goruntime.GOMAXPROCS(0)
	if p < 8 {
		p = 8
	}
	if p > n {
		p = n
	}
	return p
}

// MeasurementObserver receives the measurements a swarm's nodes
// complete, timestamped with seconds since swarm construction. Called
// concurrently from node goroutines; implementations must be fast,
// never block, and tolerate being invoked after Swarm.Observe(nil).
type MeasurementObserver func(m dataset.Measurement)

// Swarm is a set of running nodes plus the bookkeeping to evaluate them
// against the ground truth.
type Swarm struct {
	cfg       SwarmConfig
	net       *transport.Network
	store     *engine.Store
	nodes     []*Node
	endpoints []*transport.Mem
	trainMask *mat.Mask
	neighbors [][]int
	evalCache engine.PairCache

	// start anchors observed-measurement timestamps; obs is the dynamic
	// capture tap (nil when nobody listens).
	start time.Time
	obs   atomic.Pointer[MeasurementObserver]

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewSwarm builds the swarm (does not start it).
func NewSwarm(cfg SwarmConfig) (*Swarm, error) {
	ds := cfg.Dataset
	if ds == nil {
		return nil, fmt.Errorf("runtime: nil dataset")
	}
	n := ds.N()
	if cfg.K <= 0 || cfg.K >= n {
		return nil, fmt.Errorf("runtime: k=%d out of (0,%d)", cfg.K, n)
	}
	if err := cfg.SGD.Validate(); err != nil {
		return nil, err
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Millisecond
	}
	if cfg.WallClockUnit <= 0 {
		cfg.WallClockUnit = 50 * time.Microsecond
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards(n)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	trainMask, neighbors := mat.NeighborMask(n, cfg.K, ds.Metric.Symmetric(), rng)

	netCfg := transport.NetworkConfig{
		DropRate: cfg.DropRate,
		DupRate:  cfg.DupRate,
		QueueLen: 4096,
		Seed:     cfg.Seed + 1,
	}
	if cfg.NetworkDelay {
		unit := cfg.WallClockUnit
		netCfg.Delay = func(from, to string) time.Duration {
			var i, j int
			fmt.Sscanf(from, "node-%d", &i)
			fmt.Sscanf(to, "node-%d", &j)
			if i < 0 || j < 0 || i >= n || j >= n || ds.Matrix.IsMissing(i, j) {
				return unit // floor for unknown pairs
			}
			return time.Duration(ds.Matrix.At(i, j) / 2 * float64(unit))
		}
	}
	net := transport.NewNetwork(netCfg)

	var rttSrc RTTSource
	var abwSrc ABWClassSource
	if ds.Metric == dataset.RTT {
		if !cfg.NetworkDelay {
			rttSrc = oracle.NewRTT(ds.Matrix, cfg.MeasurementNoise, cfg.Seed+2)
		}
		// With NetworkDelay the nodes measure wall-clock elapsed time.
	} else {
		abwSrc = oracle.NewABWClass(ds, cfg.MeasurementNoise, cfg.Seed+2)
	}

	s := &Swarm{
		cfg:       cfg,
		net:       net,
		store:     engine.NewStore(n, cfg.SGD.Rank, cfg.Shards),
		trainMask: trainMask,
		neighbors: neighbors,
		start:     time.Now(),
	}
	for i := 0; i < n; i++ {
		addr := swarmAddr(i)
		ep := net.Attach(addr)
		nbrs := make(map[uint32]string, cfg.K)
		for _, j := range neighbors[i] {
			nbrs[uint32(j)] = swarmAddr(j)
		}
		node, err := NewNode(Config{
			ID:            uint32(i),
			Metric:        ds.Metric,
			SGD:           cfg.SGD,
			Tau:           cfg.Tau,
			Neighbors:     nbrs,
			ProbeInterval: cfg.ProbeInterval,
			RTT:           rttSrc,
			ABW:           abwSrc,
			WallClockUnit: cfg.WallClockUnit,
			Coords:        s.store.Ref(i),
			Observe:       s.observe,
			Seed:          cfg.Seed + 100 + int64(i),
		}, ep)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, node)
		s.endpoints = append(s.endpoints, ep)
	}
	return s, nil
}

func swarmAddr(i int) string { return fmt.Sprintf("node-%d", i) }

// Start launches every node goroutine.
func (s *Swarm) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	for _, node := range s.nodes {
		s.wg.Add(1)
		go func(nd *Node) {
			defer s.wg.Done()
			nd.Run(ctx)
		}(node)
	}
}

// Stop cancels all nodes and waits for them to exit.
func (s *Swarm) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
	for _, ep := range s.endpoints {
		ep.Close()
	}
}

// Observe installs the swarm's measurement observer and returns a
// cancel that detaches it — but only while it is still the installed
// one, so cancelling a replaced observer never silently detaches its
// successor. At most one observer is active at a time; installing a new
// one replaces the previous. Safe to call while the swarm runs: node
// goroutines load the pointer per measurement.
func (s *Swarm) Observe(fn MeasurementObserver) (cancel func()) {
	p := &fn
	s.obs.Store(p)
	return func() { s.obs.CompareAndSwap(p, nil) }
}

// observe is the per-node tap: timestamp and forward to the installed
// observer, if any.
func (s *Swarm) observe(self, peer int, value float64) {
	fn := s.obs.Load()
	if fn == nil || *fn == nil {
		return
	}
	(*fn)(dataset.Measurement{T: time.Since(s.start).Seconds(), I: self, J: peer, Value: value})
}

// Node returns node i.
func (s *Swarm) Node(i int) *Node { return s.nodes[i] }

// N returns the swarm size.
func (s *Swarm) N() int { return len(s.nodes) }

// Store returns the swarm-wide sharded coordinate store.
func (s *Swarm) Store() *engine.Store { return s.store }

// TrainMask returns the observation mask induced by the neighbor topology
// (shared; do not modify).
func (s *Swarm) TrainMask() *mat.Mask { return s.trainMask }

// Neighbors returns node i's neighbor set (shared slice; do not modify).
func (s *Swarm) Neighbors(i int) []int { return s.neighbors[i] }

// TotalStats aggregates all node counters.
func (s *Swarm) TotalStats() Stats {
	var t Stats
	for _, nd := range s.nodes {
		st := nd.Stats()
		t.ProbesSent += st.ProbesSent
		t.RepliesReceived += st.RepliesReceived
		t.Updates += st.Updates
		t.Rejected += st.Rejected
		t.Stale += st.Stale
		t.DecodeErrors += st.DecodeErrors
	}
	return t
}

// EvalSet snapshots all coordinates (one read-lock per shard, consistent
// per shard even while nodes keep updating) and returns ground-truth
// labels and scores over the unmeasured pairs, like sim.Driver.EvalSet.
// Label computation and prediction run block-parallel over the pair list
// (cfg.Workers goroutines, 0 = GOMAXPROCS); the pair list and full-set
// labels are cached across calls (engine.PairCache) — treat the returned
// labels as read-only.
func (s *Swarm) EvalSet(maxPairs int) (labels, scores []float64) {
	labels, scores, _ = s.EvalSetCtx(context.Background(), maxPairs)
	return labels, scores
}

// EvalSetCtx is EvalSet with cancellation of the block-parallel label and
// score sweeps (see engine.EvalSetCtx).
func (s *Swarm) EvalSetCtx(ctx context.Context, maxPairs int) (labels, scores []float64, err error) {
	ds := s.cfg.Dataset
	return engine.EvalSetCtx(ctx, s.store, engine.EvalSpec{
		Mask:          s.trainMask,
		Truth:         ds.Matrix,
		Metric:        ds.Metric,
		Tau:           s.cfg.Tau,
		MaxPairs:      maxPairs,
		SubsampleSeed: s.cfg.Seed + 7919,
		Workers:       s.cfg.Workers,
		Cache:         &s.evalCache,
	})
}

// AUC evaluates the swarm's current prediction quality.
func (s *Swarm) AUC(maxPairs int) float64 {
	labels, scores := s.EvalSet(maxPairs)
	return eval.AUC(labels, scores)
}
