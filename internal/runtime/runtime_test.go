package runtime

import (
	"context"
	"sort"
	"testing"
	"time"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/wire"
)

func TestNodeConfigValidation(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	ep := net.Attach("x")
	defer ep.Close()

	base := Config{
		ID:            1,
		Metric:        dataset.RTT,
		SGD:           sgd.Defaults(),
		Tau:           100,
		Neighbors:     map[uint32]string{2: "y"},
		ProbeInterval: time.Millisecond,
	}
	if _, err := NewNode(base, ep); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}

	noNbr := base
	noNbr.Neighbors = nil
	if _, err := NewNode(noNbr, ep); err == nil {
		t.Error("no neighbors accepted")
	}
	noTick := base
	noTick.ProbeInterval = 0
	if _, err := NewNode(noTick, ep); err == nil {
		t.Error("zero probe interval accepted")
	}
	abwNoSrc := base
	abwNoSrc.Metric = dataset.ABW
	if _, err := NewNode(abwNoSrc, ep); err == nil {
		t.Error("ABW node without class source accepted")
	}
	badSGD := base
	badSGD.SGD.Rank = 0
	if _, err := NewNode(badSGD, ep); err == nil {
		t.Error("bad SGD config accepted")
	}
}

func runSwarm(t *testing.T, cfg SwarmConfig, d time.Duration) *Swarm {
	t.Helper()
	s, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(d)
	s.Stop()
	return s
}

func TestSwarmRTTLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent integration test")
	}
	ds := dataset.Meridian(dataset.MeridianConfig{N: 40, Seed: 61})
	s := runSwarm(t, SwarmConfig{
		Dataset:       ds,
		SGD:           sgd.Defaults(),
		K:             8,
		Tau:           ds.Median(),
		ProbeInterval: 200 * time.Microsecond,
		Seed:          1,
	}, 1500*time.Millisecond)

	st := s.TotalStats()
	if st.Updates < 1000 {
		t.Fatalf("too few updates to judge: %+v", st)
	}
	if auc := s.AUC(0); auc < 0.75 {
		t.Errorf("swarm RTT AUC = %v, want >= 0.75 (stats %+v)", auc, st)
	}
}

func TestSwarmABWLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent integration test")
	}
	ds := dataset.HPS3(dataset.HPS3Config{N: 40, Seed: 62})
	s := runSwarm(t, SwarmConfig{
		Dataset:       ds,
		SGD:           sgd.Defaults(),
		K:             8,
		Tau:           ds.Median(),
		ProbeInterval: 200 * time.Microsecond,
		Seed:          2,
	}, 1500*time.Millisecond)

	st := s.TotalStats()
	if st.Updates < 1000 {
		t.Fatalf("too few updates: %+v", st)
	}
	if auc := s.AUC(0); auc < 0.7 {
		t.Errorf("swarm ABW AUC = %v, want >= 0.7 (stats %+v)", auc, st)
	}
}

func TestSwarmSurvivesLossAndDuplication(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent integration test")
	}
	// 20% loss + 10% duplication: the protocol must still learn — lost
	// probes are just missed updates, duplicates must be ignored via the
	// pending-table match.
	ds := dataset.Meridian(dataset.MeridianConfig{N: 30, Seed: 63})
	s := runSwarm(t, SwarmConfig{
		Dataset:       ds,
		SGD:           sgd.Defaults(),
		K:             6,
		Tau:           ds.Median(),
		ProbeInterval: 200 * time.Microsecond,
		DropRate:      0.2,
		DupRate:       0.1,
		Seed:          3,
	}, 1500*time.Millisecond)

	st := s.TotalStats()
	if st.Updates < 500 {
		t.Fatalf("too few updates under loss: %+v", st)
	}
	if st.Stale == 0 {
		t.Error("duplication should produce stale replies")
	}
	if auc := s.AUC(0); auc < 0.7 {
		t.Errorf("AUC under loss = %v, want >= 0.7", auc)
	}
}

func TestSwarmWallClockRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent integration test")
	}
	if raceEnabled {
		t.Skip("wall-clock RTT measurement reads scheduler saturation, not path delay, under race instrumentation")
	}
	// Full pipeline: messages delayed by RTT/2 per hop, nodes measure by
	// wall clock. Scheduling jitter makes this noisier; the classifier
	// must still clearly beat chance. The unit is kept large relative to
	// scheduler jitter (a 100µs hiccup at 50µs/ms misreads an RTT by 2ms,
	// not 5ms) so the test stays meaningful on slow or single-core CI.
	//
	// Two things made the historical version of this test flake under
	// load, and both are handled by measurement rather than by loosening
	// the quality bar:
	//
	//   - Training amount was a fixed wall-clock window, so a slow host
	//     trained less. Now training runs to a deterministic update
	//     target — a slow host trains longer rather than less, and the
	//     AUC bar judges the same amount of learning everywhere.
	//   - Measurement quality depends on the host's timer fidelity:
	//     every wall-clock RTT inherits the scheduler's sleep overshoot,
	//     and on a saturated or single-core host that overshoot can
	//     dwarf the wall-clock unit, turning the readings into scheduler
	//     noise. The test calibrates the overshoot first and skips —
	//     with the measured number — when the instrument cannot resolve
	//     the unit, instead of failing on garbage input or passing a
	//     meaningless bar.
	const (
		targetUpdates = 25000
		unit          = 50 * time.Microsecond
	)
	if over := timerOvershoot(64); over > 4*unit {
		t.Skipf("host timer overshoot %v vs %v wall-clock unit: RTT readings would measure scheduler noise, not path delay", over, unit)
	}
	ds := dataset.Meridian(dataset.MeridianConfig{N: 25, Seed: 64})
	s, err := NewSwarm(SwarmConfig{
		Dataset:       ds,
		SGD:           sgd.Defaults(),
		K:             6,
		Tau:           ds.Median(),
		ProbeInterval: 400 * time.Microsecond,
		NetworkDelay:  true,
		WallClockUnit: unit,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	start := time.Now()
	const hardTimeout = 30 * time.Second
	for s.TotalStats().Updates < targetUpdates && time.Since(start) < hardTimeout {
		time.Sleep(10 * time.Millisecond)
	}
	elapsed := time.Since(start)
	s.Stop()

	st := s.TotalStats()
	// The overshoot calibration above proved the host responsive, so a
	// near-total stall is a product regression, not load — fail hard
	// (the historical minimum), and only treat a *partial* shortfall as
	// an overloaded-host skip.
	if st.Updates < 300 {
		t.Fatalf("swarm made almost no progress on a responsive host: %+v after %v", st, elapsed)
	}
	if st.Updates < targetUpdates {
		t.Skipf("host too loaded for the probe schedule: %d of %d updates after %v (stats %+v)",
			st.Updates, targetUpdates, elapsed, st)
	}
	// The swarm nominally reaches the target within a few seconds;
	// allow generous slack before declaring the readings meaningless.
	if elapsed > 15*time.Second {
		t.Skipf("scheduler too saturated for wall-clock measurement: %d updates took %v", targetUpdates, elapsed)
	}
	if auc := s.AUC(0); auc < 0.7 {
		t.Errorf("wall-clock AUC = %v after %d updates, want >= 0.7 (stats %+v)", auc, st.Updates, st)
	}
}

// timerOvershoot measures the host's median overshoot of a 100µs sleep
// — the scheduler noise floor every wall-clock RTT measurement
// inherits. An idle multi-core host measures tens of microseconds; a
// saturated or single-core one measures a millisecond or more.
func timerOvershoot(samples int) time.Duration {
	over := make([]time.Duration, samples)
	for i := range over {
		t0 := time.Now()
		time.Sleep(100 * time.Microsecond)
		over[i] = time.Since(t0) - 100*time.Microsecond
	}
	sort.Slice(over, func(a, b int) bool { return over[a] < over[b] })
	return over[samples/2]
}

func TestNodeIgnoresGarbageAndForgedReplies(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	epA := net.Attach("a")
	epEvil := net.Attach("evil")
	defer epEvil.Close()

	ds := dataset.Meridian(dataset.MeridianConfig{N: 10, Seed: 65})
	node, err := NewNode(Config{
		ID:            0,
		Metric:        dataset.RTT,
		SGD:           sgd.Defaults(),
		Tau:           ds.Median(),
		Neighbors:     map[uint32]string{1: "b"},
		ProbeInterval: time.Hour, // never probes on its own
		RTT:           nil,
		Seed:          1,
	}, epA)
	if err != nil {
		t.Fatal(err)
	}
	before := node.Coordinates()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		node.Run(ctx)
	}()

	// Garbage datagram.
	if err := epEvil.Send("a", []byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	// Forged reply for a probe never sent.
	forged, _ := wire.AppendProbeReply(nil, &wire.ProbeReply{
		Seq: 999, From: 1,
		U: []float64{1e30, 1e30}, V: []float64{1e30, 1e30},
	})
	if err := epEvil.Send("a", forged); err != nil {
		t.Fatal(err)
	}

	time.Sleep(100 * time.Millisecond)
	cancel()
	epA.Close()
	<-done

	st := node.Stats()
	if st.DecodeErrors == 0 {
		t.Error("garbage datagram not counted")
	}
	if st.Stale == 0 {
		t.Error("forged reply not counted as stale")
	}
	after := node.Coordinates()
	for i := range before.U {
		if before.U[i] != after.U[i] || before.V[i] != after.V[i] {
			t.Fatal("forged traffic modified coordinates")
		}
	}
}

func TestNodeAnswersProbes(t *testing.T) {
	// A bare RTT node must answer probe requests with its coordinates.
	net := transport.NewNetwork(transport.NetworkConfig{})
	epNode := net.Attach("node")
	epProbe := net.Attach("prober")
	defer epProbe.Close()

	node, err := NewNode(Config{
		ID:            7,
		Metric:        dataset.RTT,
		SGD:           sgd.Defaults(),
		Tau:           50,
		Neighbors:     map[uint32]string{1: "prober"},
		ProbeInterval: time.Hour,
		Seed:          2,
	}, epNode)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		node.Run(ctx)
	}()

	req, _ := wire.AppendProbeRequest(nil, &wire.ProbeRequest{Seq: 5, From: 1})
	if err := epProbe.Send("node", req); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-epProbe.Recv():
		var rep wire.ProbeReply
		if err := wire.DecodeProbeReply(pkt.Data, &rep); err != nil {
			t.Fatalf("bad reply: %v", err)
		}
		if rep.Seq != 5 || rep.From != 7 {
			t.Errorf("reply = %+v", rep)
		}
		if len(rep.U) != 10 || len(rep.V) != 10 {
			t.Errorf("reply coordinates %d/%d, want rank 10", len(rep.U), len(rep.V))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
	cancel()
	epNode.Close()
	<-done
}

func TestSwarmConfigValidation(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 10, Seed: 66})
	if _, err := NewSwarm(SwarmConfig{Dataset: nil}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewSwarm(SwarmConfig{Dataset: ds, SGD: sgd.Defaults(), K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSwarm(SwarmConfig{Dataset: ds, SGD: sgd.Defaults(), K: 10}); err == nil {
		t.Error("k=n accepted")
	}
}
