package runtime

import (
	"context"
	"testing"
	"time"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/transport"
	"dmfsgd/internal/vec"
	"dmfsgd/internal/wire"
)

// fixedABW always reports the same class for any pair.
type fixedABW struct{ c classify.Class }

func (f fixedABW) MeasureClass(sender, target int, rate float64) (classify.Class, bool) {
	return f.c, true
}

// TestABWProtocolMessageLevel drives one complete Algorithm-2 exchange by
// hand and verifies each step against the update equations:
//
//	step 1: probe carries the sender's uᵢ and the rate τ;
//	steps 2-4: the target infers x, replies with (x, vⱼ pre-update),
//	           then updates vⱼ per eq. 13;
//	step 5: the sender updates uᵢ per eq. 12 using the reply.
func TestABWProtocolMessageLevel(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	epTarget := net.Attach("target")
	epProbe := net.Attach("prober")
	defer epProbe.Close()

	cfg := sgd.Defaults()
	target, err := NewNode(Config{
		ID:            9,
		Metric:        dataset.ABW,
		SGD:           cfg,
		Tau:           43,
		Neighbors:     map[uint32]string{1: "prober"},
		ProbeInterval: time.Hour,
		ABW:           fixedABW{c: classify.Bad},
		Seed:          3,
	}, epTarget)
	if err != nil {
		t.Fatal(err)
	}
	vBefore := target.Coordinates().V
	uBefore := target.Coordinates().U

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		target.Run(ctx)
	}()

	// Step 1: a hand-rolled probe carrying senderU and rate.
	senderU := []float64{1, 0.5, -0.25, 0, 0, 0, 0, 0, 0, 0}
	req, _ := wire.AppendProbeRequest(nil, &wire.ProbeRequest{
		Seq: 77, From: 1, Rate: 43, SenderU: senderU,
	})
	if err := epProbe.Send("target", req); err != nil {
		t.Fatal(err)
	}

	var rep wire.ProbeReply
	select {
	case pkt := <-epProbe.Recv():
		if err := wire.DecodeProbeReply(pkt.Data, &rep); err != nil {
			t.Fatalf("bad reply: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
	cancel()
	epTarget.Close()
	<-done

	// Steps 2-3: the reply carries the inferred class and the PRE-update
	// vⱼ (step 3 precedes step 4 in Algorithm 2).
	if rep.Seq != 77 || rep.From != 9 {
		t.Errorf("reply header: %+v", rep)
	}
	if rep.Class != int8(classify.Bad) {
		t.Errorf("reply class = %d, want %d", rep.Class, int8(classify.Bad))
	}
	if len(rep.U) != 0 {
		t.Errorf("ABW reply must not carry U, got %d elements", len(rep.U))
	}
	if !vec.Equal(rep.V, vBefore, 0) {
		t.Error("reply V must be the pre-update coordinates")
	}

	// Step 4 verification: the target's vⱼ moved exactly per eq. 13.
	want := append([]float64(nil), vBefore...)
	g := cfg.Loss.Scalar(classify.Bad.Value(), vec.Dot(senderU, vBefore))
	vec.ScaleAxpy(1-cfg.LearningRate*cfg.Lambda, want, -cfg.LearningRate*g, senderU)
	after := target.Coordinates()
	if !vec.Equal(after.V, want, 1e-12) {
		t.Errorf("target v after update = %v, want %v", after.V, want)
	}
	// uⱼ untouched: Algorithm 2 never updates the target's u.
	if !vec.Equal(after.U, uBefore, 0) {
		t.Error("target u must not move in ABW exchange")
	}
	if st := target.Stats(); st.Updates != 1 {
		t.Errorf("updates = %d, want 1", st.Updates)
	}
}

// TestABWUnmeasurablePairYieldsNoReply: a probe for a pair the target
// cannot measure produces no reply and no update.
func TestABWUnmeasurablePair(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	epTarget := net.Attach("target")
	epProbe := net.Attach("prober")
	defer epProbe.Close()

	ds := dataset.HPS3(dataset.HPS3Config{N: 4, MissingFraction: 0.0001, Seed: 1})
	// Make pair (1, 0) unmeasurable.
	ds.Matrix.SetMissing(1, 0)
	target, err := NewNode(Config{
		ID:            0,
		Metric:        dataset.ABW,
		SGD:           sgd.Defaults(),
		Tau:           ds.Median(),
		Neighbors:     map[uint32]string{1: "prober"},
		ProbeInterval: time.Hour,
		ABW:           dsOracle{ds},
		Seed:          5,
	}, epTarget)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		target.Run(ctx)
	}()

	req, _ := wire.AppendProbeRequest(nil, &wire.ProbeRequest{
		Seq: 1, From: 1, Rate: ds.Median(), SenderU: make([]float64, 10),
	})
	if err := epProbe.Send("target", req); err != nil {
		t.Fatal(err)
	}
	select {
	case <-epProbe.Recv():
		t.Fatal("unmeasurable pair should produce no reply")
	case <-time.After(150 * time.Millisecond):
	}
	cancel()
	epTarget.Close()
	<-done
	if st := target.Stats(); st.Updates != 0 {
		t.Errorf("updates = %d, want 0", st.Updates)
	}
}

// dsOracle adapts a dataset to ABWClassSource for these tests.
type dsOracle struct{ ds *dataset.Dataset }

func (o dsOracle) MeasureClass(sender, target int, rate float64) (classify.Class, bool) {
	if o.ds.Matrix.IsMissing(sender, target) {
		return classify.Bad, false
	}
	return classify.Of(dataset.ABW, o.ds.Matrix.At(sender, target), rate), true
}

// TestABWSenderRejectsInvalidClass: a malicious reply with class 0 or 7
// must be rejected without touching coordinates.
func TestABWSenderRejectsInvalidClass(t *testing.T) {
	net := transport.NewNetwork(transport.NetworkConfig{})
	epSender := net.Attach("sender")
	epEvil := net.Attach("evil")
	defer epEvil.Close()

	sender, err := NewNode(Config{
		ID:            1,
		Metric:        dataset.ABW,
		SGD:           sgd.Defaults(),
		Tau:           43,
		Neighbors:     map[uint32]string{2: "evil"},
		ProbeInterval: 20 * time.Millisecond,
		ABW:           fixedABW{c: classify.Good},
		Seed:          6,
	}, epSender)
	if err != nil {
		t.Fatal(err)
	}
	before := sender.Coordinates()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sender.Run(ctx)
	}()

	// Answer the sender's probes with invalid classes.
	deadline := time.After(2 * time.Second)
	answered := 0
	for answered < 3 {
		select {
		case pkt := <-epEvil.Recv():
			var req wire.ProbeRequest
			if err := wire.DecodeProbeRequest(pkt.Data, &req); err != nil {
				continue
			}
			rep, _ := wire.AppendProbeReply(nil, &wire.ProbeReply{
				Seq: req.Seq, From: 2, Class: int8(7 * (answered%2*2 - 1)), // ±7
				V: make([]float64, 10),
			})
			if err := epEvil.Send("sender", rep); err != nil {
				t.Fatal(err)
			}
			answered++
		case <-deadline:
			t.Fatal("sender never probed")
		}
	}
	time.Sleep(100 * time.Millisecond)
	cancel()
	epSender.Close()
	<-done

	st := sender.Stats()
	if st.Rejected < 3 {
		t.Errorf("rejected = %d, want >= 3", st.Rejected)
	}
	if st.Updates != 0 {
		t.Errorf("updates = %d, want 0", st.Updates)
	}
	after := sender.Coordinates()
	if !vec.Equal(before.U, after.U, 0) {
		t.Error("invalid classes moved the sender's coordinates")
	}
}
