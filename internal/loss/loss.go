// Package loss implements the three loss functions of the paper (§4.1) and
// their gradients with respect to the factor coordinates (§5.2.3):
//
//   - L2 (square) loss for quantity-based prediction:  l(x, x̂) = (x−x̂)²
//   - hinge loss for classification:                   l(x, x̂) = max(0, 1−x·x̂)
//   - logistic loss for classification:                l(x, x̂) = ln(1+e^(−x·x̂))
//
// where x is the reference value (±1 for classes, a real quantity for L2)
// and x̂ = u·vᵀ is the factorization estimate. The hinge loss is not
// differentiable at x·x̂ = 1; following the paper (footnote 2) the
// subgradient is used and referred to as the gradient.
//
// Gradient conventions match the paper exactly: the factor 2 from the L2
// derivative is dropped (§5.2.1, "for mathematical convenience"), so
//
//	L2:       ∂l/∂u = −(x − u·vᵀ)·v            (eq. 18)
//	hinge:    ∂l/∂u = −x·v if 1 − x·u·vᵀ > 0   (eq. 14), else 0
//	logistic: ∂l/∂u = −x·v / (1 + e^{x·u·vᵀ})  (eq. 16)
//
// and symmetrically for v with u and v exchanged (eqs. 15, 17, 19).
package loss

import (
	"fmt"
	"math"
)

// Kind identifies one of the paper's loss functions.
type Kind uint8

const (
	// L2 is the square loss used for quantity-based prediction (regression).
	L2 Kind = iota
	// Hinge is the max-margin classification loss.
	Hinge
	// Logistic is the log-loss; the paper's recommended default for
	// class-based prediction (§6.2.1).
	Logistic
)

// String returns the human-readable name of the loss.
func (k Kind) String() string {
	switch k {
	case L2:
		return "l2"
	case Hinge:
		return "hinge"
	case Logistic:
		return "logistic"
	default:
		return fmt.Sprintf("loss.Kind(%d)", uint8(k))
	}
}

// ParseKind converts a name ("l2", "hinge", "logistic") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "l2", "square", "L2":
		return L2, nil
	case "hinge":
		return Hinge, nil
	case "logistic", "log":
		return Logistic, nil
	}
	return 0, fmt.Errorf("loss: unknown kind %q", s)
}

// IsClassification reports whether the loss expects ±1 class labels.
func (k Kind) IsClassification() bool { return k == Hinge || k == Logistic }

// Value returns l(x, xhat) for the loss kind.
func (k Kind) Value(x, xhat float64) float64 {
	switch k {
	case L2:
		d := x - xhat
		return d * d
	case Hinge:
		return math.Max(0, 1-x*xhat)
	case Logistic:
		return log1pExpNeg(x * xhat)
	default:
		panic("loss: invalid Kind")
	}
}

// Scalar returns the scalar multiplier g such that the gradient of
// l(x, u·vᵀ) with respect to u equals g·v and with respect to v equals g·u.
// All three of the paper's losses share this structure because they depend
// on u and v only through the bilinear form u·vᵀ:
//
//	L2:       g = −(x − x̂)
//	hinge:    g = −x   if 1 − x·x̂ > 0, else 0
//	logistic: g = −x / (1 + e^{x·x̂})
//
// Callers apply the SGD update as coordinate ← (1−ηλ)·coordinate − η·g·other,
// which is exactly eqs. 9–13 with zero extra allocation.
func (k Kind) Scalar(x, xhat float64) float64 {
	switch k {
	case L2:
		return xhat - x
	case Hinge:
		if 1-x*xhat > 0 {
			return -x
		}
		return 0
	case Logistic:
		// −x·σ(−x·x̂) where σ is the logistic function, computed stably.
		return -x * sigmoid(-x*xhat)
	default:
		panic("loss: invalid Kind")
	}
}

// log1pExpNeg computes ln(1+e^(−z)) without overflow for large |z|.
func log1pExpNeg(z float64) float64 {
	if z < -35 {
		// e^{-z} dominates; ln(1+e^{-z}) ≈ −z.
		return -z
	}
	if z > 35 {
		// e^{-z} underflows to 0 but log1p handles tiny values exactly.
		return math.Exp(-z)
	}
	return math.Log1p(math.Exp(-z))
}

// sigmoid computes 1/(1+e^(−z)) stably for all z.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Kinds lists every supported loss, in declaration order. Useful for sweeps.
func Kinds() []Kind { return []Kind{L2, Hinge, Logistic} }

// ClassificationKinds lists the losses valid for class-based prediction.
func ClassificationKinds() []Kind { return []Kind{Hinge, Logistic} }
