package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{L2, "l2"},
		{Hinge, "hinge"},
		{Logistic, "logistic"},
		{Kind(99), "loss.Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", uint8(tt.k), got, tt.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

func TestIsClassification(t *testing.T) {
	if L2.IsClassification() {
		t.Error("L2 should not be a classification loss")
	}
	if !Hinge.IsClassification() || !Logistic.IsClassification() {
		t.Error("hinge and logistic are classification losses")
	}
}

func TestL2Value(t *testing.T) {
	tests := []struct {
		x, xhat, want float64
	}{
		{1, 1, 0},
		{1, 0, 1},
		{3, 1, 4},
		{-1, 1, 4},
		{100, 90, 100},
	}
	for _, tt := range tests {
		if got := L2.Value(tt.x, tt.xhat); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("L2.Value(%v,%v) = %v, want %v", tt.x, tt.xhat, got, tt.want)
		}
	}
}

func TestHingeValue(t *testing.T) {
	tests := []struct {
		x, xhat, want float64
	}{
		{1, 2, 0},     // well classified, beyond margin
		{1, 1, 0},     // exactly on margin
		{1, 0.5, 0.5}, // inside margin
		{1, 0, 1},
		{1, -1, 2},  // misclassified
		{-1, -2, 0}, // negative class, correct
		{-1, 1, 2},  // negative class, wrong
	}
	for _, tt := range tests {
		if got := Hinge.Value(tt.x, tt.xhat); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Hinge.Value(%v,%v) = %v, want %v", tt.x, tt.xhat, got, tt.want)
		}
	}
}

func TestLogisticValue(t *testing.T) {
	// ln(1+e^0) = ln 2 at x·x̂ = 0.
	if got := Logistic.Value(1, 0); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("Logistic.Value(1,0) = %v, want ln2", got)
	}
	// Symmetric in the product: l(1, z) == l(-1, -z).
	for _, z := range []float64{-3, -0.5, 0, 0.5, 3} {
		a := Logistic.Value(1, z)
		b := Logistic.Value(-1, -z)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("logistic not symmetric at z=%v: %v vs %v", z, a, b)
		}
	}
	// Monotone decreasing in the margin x·x̂.
	prev := math.Inf(1)
	for _, z := range []float64{-5, -1, 0, 1, 5} {
		v := Logistic.Value(1, z)
		if v >= prev {
			t.Errorf("logistic not decreasing at z=%v", z)
		}
		prev = v
	}
}

func TestLogisticValueExtremes(t *testing.T) {
	// Large positive margin → loss ≈ 0 without NaN.
	if got := Logistic.Value(1, 1000); got < 0 || math.IsNaN(got) || got > 1e-10 {
		t.Errorf("Logistic at huge margin = %v", got)
	}
	// Large negative margin → loss ≈ |margin| without overflow.
	if got := Logistic.Value(1, -1000); math.IsInf(got, 0) || math.Abs(got-1000) > 1e-6 {
		t.Errorf("Logistic at huge negative margin = %v, want ≈1000", got)
	}
}

func TestHingeScalarZeroWhenCorrect(t *testing.T) {
	// Correctly classified beyond margin: zero gradient (§5.2.3).
	if g := Hinge.Scalar(1, 1.5); g != 0 {
		t.Errorf("Hinge.Scalar(1,1.5) = %v, want 0", g)
	}
	if g := Hinge.Scalar(-1, -1.5); g != 0 {
		t.Errorf("Hinge.Scalar(-1,-1.5) = %v, want 0", g)
	}
	// Misclassified: gradient scalar is −x.
	if g := Hinge.Scalar(1, -0.2); g != -1 {
		t.Errorf("Hinge.Scalar(1,-0.2) = %v, want -1", g)
	}
	if g := Hinge.Scalar(-1, 0.2); g != 1 {
		t.Errorf("Hinge.Scalar(-1,0.2) = %v, want 1", g)
	}
}

func TestLogisticScalarMatchesPaper(t *testing.T) {
	// Eq. 16: dl/du = −x·v/(1+e^{x·u·vᵀ}); scalar = −x/(1+e^{x·x̂}).
	for _, tt := range []struct{ x, xhat float64 }{
		{1, 0}, {1, 2}, {-1, 0.3}, {-1, -4}, {1, -7},
	} {
		want := -tt.x / (1 + math.Exp(tt.x*tt.xhat))
		got := Logistic.Scalar(tt.x, tt.xhat)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Logistic.Scalar(%v,%v) = %v, want %v", tt.x, tt.xhat, got, want)
		}
	}
}

func TestL2ScalarMatchesPaper(t *testing.T) {
	// Eq. 18: dl/du = −(x−u·vᵀ)·v; scalar = x̂−x.
	if got := L2.Scalar(3, 1); got != -2 {
		t.Errorf("L2.Scalar(3,1) = %v, want -2", got)
	}
	if got := L2.Scalar(-1, 0.5); got != 1.5 {
		t.Errorf("L2.Scalar(-1,0.5) = %v, want 1.5", got)
	}
}

// Property: the gradient scalar matches a central finite difference of the
// loss value with respect to x̂, for every differentiable point. This pins
// the analytic gradients to the loss definitions. Note the paper drops the
// factor 2 on the L2 gradient, so we compare against d/dx̂ (x−x̂)²/2 for L2.
func TestScalarPropertyFiniteDifference(t *testing.T) {
	const h = 1e-6
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := float64(1)
		if rng.Intn(2) == 0 {
			x = -1
		}
		xhat := rng.NormFloat64() * 3
		for _, k := range Kinds() {
			if k == Hinge && math.Abs(1-x*xhat) < 1e-3 {
				continue // kink: subgradient, skip
			}
			num := (k.Value(x, xhat+h) - k.Value(x, xhat-h)) / (2 * h)
			if k == L2 {
				num /= 2 // paper drops the factor 2
			}
			got := k.Scalar(x, xhat)
			if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
				t.Logf("%v: x=%v xhat=%v numeric=%v analytic=%v", k, x, xhat, num, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: classification losses penalize the wrong sign more than the
// right sign, for any magnitude (paper §4.1: "values of x·x̂ lower than 1
// are strongly penalized and otherwise less or not penalized").
func TestClassificationPropertySignSensitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mag := rng.Float64()*5 + 0.01
		for _, k := range ClassificationKinds() {
			if k.Value(1, mag) >= k.Value(1, -mag) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: loss values are never negative and never NaN.
func TestValuePropertyNonNegativeFinite(t *testing.T) {
	f := func(x, xhat float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(xhat) || math.IsInf(xhat, 0) {
			return true
		}
		// keep magnitudes physical
		x = math.Mod(x, 100)
		xhat = math.Mod(xhat, 100)
		for _, k := range Kinds() {
			v := k.Value(x, xhat)
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidStability(t *testing.T) {
	for _, z := range []float64{-750, -100, -1, 0, 1, 100, 750} {
		s := sigmoid(z)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Errorf("sigmoid(%v) = %v out of [0,1]", z, s)
		}
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-15 {
		t.Errorf("sigmoid(0) = %v, want 0.5", s)
	}
}

func BenchmarkScalarLogistic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Logistic.Scalar(1, float64(i%7)-3)
	}
}

func BenchmarkScalarHinge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hinge.Scalar(1, float64(i%7)-3)
	}
}
