package engine

import (
	"math/rand"
	goruntime "runtime"
	"sync"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/vec"
)

// Blocks partitions [0, n) into contiguous index blocks and runs fn over
// them on up to workers goroutines. With workers ≤ 1 (or a trivially small
// n) fn runs inline over the whole range. Callers parallelize safely by
// writing only to disjoint index ranges of preallocated output slices —
// the result is then identical to a sequential pass.
func Blocks(n, workers int, fn func(lo, hi int)) {
	const minBlock = 1024 // below this, goroutine overhead dominates
	if workers > n/minBlock {
		workers = n / minBlock
	}
	if workers <= 1 || n <= minBlock {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ScorePairs fills scores[k] = u_{pairs[k].I} · v_{pairs[k].J} from flat
// row-major snapshot arrays (as produced by Store.SnapshotInto), spreading
// the work over row-blocks of the pair list. scores must have len(pairs).
func ScorePairs(u, v []float64, rank int, pairs []mat.Pair, scores []float64, workers int) {
	if len(scores) != len(pairs) {
		panic("engine: scores length must match pairs")
	}
	Blocks(len(pairs), workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			p := pairs[k]
			scores[k] = vec.Dot(u[p.I*rank:(p.I+1)*rank], v[p.J*rank:(p.J+1)*rank])
		}
	})
}

// EvalSpec describes the test-set evaluation shared by both drivers: the
// complement of the training mask, filtered to pairs with present ground
// truth, optionally subsampled, labelled by thresholding the truth matrix
// and scored from a store snapshot.
type EvalSpec struct {
	// Mask is the training observation mask; evaluation runs on its
	// off-diagonal complement ("predict the unmeasured pairs").
	Mask *mat.Mask
	// Truth is the clean ground-truth matrix; pairs missing from it are
	// excluded.
	Truth *mat.Dense
	// Metric and Tau derive the ±1 evaluation labels from Truth.
	Metric dataset.Metric
	Tau    float64
	// MaxPairs > 0 subsamples the pair list deterministically with
	// SubsampleSeed; 0 keeps everything.
	MaxPairs      int
	SubsampleSeed int64
	// Workers bounds the label/score goroutines (0 = GOMAXPROCS).
	Workers int
}

// EvalSet runs the evaluation pipeline of spec against the store: one
// consistent snapshot (each shard's read lock taken once — safe while
// runtime nodes keep updating), then block-parallel label computation and
// scoring. Output is identical for every worker count.
func EvalSet(store *Store, spec EvalSpec) (labels, scores []float64) {
	pairs := spec.Mask.Complement().Pairs()
	kept := pairs[:0]
	for _, p := range pairs {
		if !spec.Truth.IsMissing(p.I, p.J) {
			kept = append(kept, p)
		}
	}
	pairs = kept
	if spec.MaxPairs > 0 && len(pairs) > spec.MaxPairs {
		sub := rand.New(rand.NewSource(spec.SubsampleSeed))
		sub.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:spec.MaxPairs]
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	labels = make([]float64, len(pairs))
	scores = make([]float64, len(pairs))
	u, v := store.SnapshotFlat()
	Blocks(len(pairs), workers, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			p := pairs[idx]
			labels[idx] = classify.Of(spec.Metric, spec.Truth.At(p.I, p.J), spec.Tau).Value()
		}
	})
	ScorePairs(u, v, store.rank, pairs, scores, workers)
	return labels, scores
}
