package engine

import (
	"context"
	"math/rand"
	goruntime "runtime"
	"sync"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/vec"
)

// Blocks partitions [0, n) into contiguous index blocks and runs fn over
// them on up to workers goroutines. With workers ≤ 1 (or a trivially small
// n) fn runs inline over the whole range. Callers parallelize safely by
// writing only to disjoint index ranges of preallocated output slices —
// the result is then identical to a sequential pass.
func Blocks(n, workers int, fn func(lo, hi int)) {
	const minBlock = 1024 // below this, goroutine overhead dominates
	if workers > n/minBlock {
		workers = n / minBlock
	}
	if workers <= 1 || n <= minBlock {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ScorePairs fills scores[k] = u_{pairs[k].I} · v_{pairs[k].J} from flat
// row-major snapshot arrays (as produced by Store.SnapshotInto), spreading
// the work over row-blocks of the pair list. scores must have len(pairs).
func ScorePairs(u, v []float64, rank int, pairs []mat.Pair, scores []float64, workers int) {
	ScorePairsCtx(context.Background(), u, v, rank, pairs, scores, workers)
}

// ScorePairsCtx is ScorePairs with cancellation: every block worker polls
// ctx every few thousand pairs and abandons its remaining range once it is
// cancelled. All workers are joined before returning; on cancellation the
// scores slice is partially filled and the context's error is returned.
func ScorePairsCtx(ctx context.Context, u, v []float64, rank int, pairs []mat.Pair, scores []float64, workers int) error {
	if len(scores) != len(pairs) {
		panic("engine: scores length must match pairs")
	}
	Blocks(len(pairs), workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if k&ctxCheckMask == 0 && ctx.Err() != nil {
				return
			}
			p := pairs[k]
			scores[k] = vec.Dot(u[p.I*rank:(p.I+1)*rank], v[p.J*rank:(p.J+1)*rank])
		}
	})
	return ctx.Err()
}

// buildEvalPairs lists the evaluation pairs in row-major order: the
// off-diagonal entries not observed in mask whose ground truth is present.
func buildEvalPairs(mask *mat.Mask, truth *mat.Dense) []mat.Pair {
	rows, cols := mask.Rows(), mask.Cols()
	out := make([]mat.Pair, 0, rows*cols-mask.Count())
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i != j && !mask.At(i, j) && !truth.IsMissing(i, j) {
				out = append(out, mat.Pair{I: i, J: j})
			}
		}
	}
	return out
}

// PairCache memoizes the evaluation pair list, which is by far the largest
// allocation of an evaluation sweep (~100MB at Meridian 2500 scale: nearly
// n² pairs of two ints). The list depends only on the training mask and the
// ground-truth missing pattern, both of which are fixed for the lifetime of
// a driver, so repeated EvalSet calls (checkpoint curves, serving-time AUC
// probes) can share one list. The cache revalidates on every lookup by
// comparing the mask/truth identities and the mask's population count, so
// it invalidates itself if the measured set changes in place.
//
// The cached list is shared read-only between callers; evaluation never
// mutates it (subsampling shuffles a copy).
//
// Alongside the pair list the cache memoizes the ±1 evaluation labels,
// keyed on (metric, τ). The labels depend only on the pair list and the
// ground truth thresholded at τ — both fixed for a driver's lifetime — so
// repeated full-set evaluations skip the second-largest allocation of a
// sweep (~n² float64s, ~50MB at Meridian 2500). The cached labels
// invalidate together with the pair list, or when τ or the metric change.
type PairCache struct {
	mu    sync.Mutex
	mask  *mat.Mask
	truth *mat.Dense
	count int
	pairs []mat.Pair

	labelMetric dataset.Metric
	labelTau    float64
	labels      []float64 // labels of `pairs` at (labelMetric, labelTau)
}

// get returns the cached pair list for (mask, truth), rebuilding it when
// the cache is cold or the measured set changed. Rebuilding drops the
// cached labels: they were computed for the previous list.
func (c *PairCache) get(mask *mat.Mask, truth *mat.Dense) []mat.Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pairs != nil && c.mask == mask && c.truth == truth && c.count == mask.Count() {
		return c.pairs
	}
	c.mask, c.truth, c.count = mask, truth, mask.Count()
	c.pairs = buildEvalPairs(mask, truth)
	c.labels = nil
	return c.pairs
}

// lookupLabels returns the cached label list when it was computed for
// exactly this pair list at (metric, tau); nil otherwise.
func (c *PairCache) lookupLabels(pairs []mat.Pair, metric dataset.Metric, tau float64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.labels == nil || len(pairs) == 0 || len(c.pairs) != len(pairs) ||
		&c.pairs[0] != &pairs[0] || c.labelMetric != metric || c.labelTau != tau {
		return nil
	}
	return c.labels
}

// storeLabels records a freshly computed label list for the cached pair
// list, unless the list was invalidated while the labels were being built.
func (c *PairCache) storeLabels(pairs []mat.Pair, metric dataset.Metric, tau float64, labels []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(pairs) == 0 || len(c.pairs) != len(pairs) || &c.pairs[0] != &pairs[0] {
		return
	}
	c.labelMetric, c.labelTau, c.labels = metric, tau, labels
}

// EvalSpec describes the test-set evaluation shared by both drivers: the
// complement of the training mask, filtered to pairs with present ground
// truth, optionally subsampled, labelled by thresholding the truth matrix
// and scored from a store snapshot.
type EvalSpec struct {
	// Mask is the training observation mask; evaluation runs on its
	// off-diagonal complement ("predict the unmeasured pairs").
	Mask *mat.Mask
	// Truth is the clean ground-truth matrix; pairs missing from it are
	// excluded.
	Truth *mat.Dense
	// Metric and Tau derive the ±1 evaluation labels from Truth.
	Metric dataset.Metric
	Tau    float64
	// MaxPairs > 0 subsamples the pair list deterministically with
	// SubsampleSeed; 0 keeps everything.
	MaxPairs      int
	SubsampleSeed int64
	// Workers bounds the label/score goroutines (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes the pair list across calls (see
	// PairCache). The output is identical with and without it.
	Cache *PairCache
}

// EvalSet runs the evaluation pipeline of spec against the store: one
// consistent snapshot (each shard's read lock taken once — safe while
// runtime nodes keep updating), then block-parallel label computation and
// scoring. Output is identical for every worker count.
//
// With a Cache and no subsampling, the returned labels slice is shared
// with the cache (and with every other full-set caller): treat it as
// read-only. The scores slice is always freshly allocated.
func EvalSet(store *Store, spec EvalSpec) (labels, scores []float64) {
	labels, scores, _ = EvalSetCtx(context.Background(), store, spec)
	return labels, scores
}

// EvalSetCtx is EvalSet with cancellation: the block-parallel label and
// score sweeps poll ctx every few thousand pairs, abandon their remaining
// ranges once it is cancelled, and join every worker before returning. On
// cancellation it returns nil slices and the context's error.
func EvalSetCtx(ctx context.Context, store *Store, spec EvalSpec) (labels, scores []float64, err error) {
	var pairs []mat.Pair
	cached := spec.Cache != nil
	if cached {
		pairs = spec.Cache.get(spec.Mask, spec.Truth)
	} else {
		pairs = buildEvalPairs(spec.Mask, spec.Truth)
	}
	subsampled := false
	if spec.MaxPairs > 0 && len(pairs) > spec.MaxPairs {
		subsampled = true
		if cached {
			// Never shuffle the shared cached list.
			pairs = append([]mat.Pair(nil), pairs...)
		}
		sub := rand.New(rand.NewSource(spec.SubsampleSeed))
		sub.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		pairs = pairs[:spec.MaxPairs]
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	// Full-set labels are memoizable: they depend only on the cached pair
	// list, the metric and τ. Subsampled labels are per-call (the pair
	// subset varies with MaxPairs and the subsample seed).
	if cached && !subsampled {
		labels = spec.Cache.lookupLabels(pairs, spec.Metric, spec.Tau)
	}
	fresh := labels == nil
	if fresh {
		labels = make([]float64, len(pairs))
		Blocks(len(pairs), workers, func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				if idx&ctxCheckMask == 0 && ctx.Err() != nil {
					return
				}
				p := pairs[idx]
				labels[idx] = classify.Of(spec.Metric, spec.Truth.At(p.I, p.J), spec.Tau).Value()
			}
		})
	}
	scores = make([]float64, len(pairs))
	u, v := store.SnapshotFlat()
	if err := ScorePairsCtx(ctx, u, v, store.rank, pairs, scores, workers); err != nil {
		return nil, nil, err
	}
	if fresh && cached && !subsampled {
		spec.Cache.storeLabels(pairs, spec.Metric, spec.Tau, labels)
	}
	return labels, scores, nil
}
