// Package engine is the shared execution core under both protocol drivers:
// the deterministic sequential simulator (package sim) and the concurrent
// message-passing runtime (package runtime).
//
// It provides three building blocks:
//
//   - Store: a sharded coordinate store. The n nodes are partitioned across
//     P shards (node i lives in shard i mod P); each shard owns its nodes'
//     (uᵢ, vᵢ) pairs in one contiguous backing array and guards them with a
//     single RWMutex. Sequential callers address coordinates directly;
//     concurrent callers go through Ref handles that take the shard lock.
//
//   - Engine: the training executor. Its sequential mode (Step, Run,
//     ApplyLabel) reproduces the historical sim.Driver semantics bit for
//     bit: one master RNG stream drives probe order and every update is
//     applied in place, Gauss-Seidel style. Its parallel mode (RunEpoch)
//     executes one epoch of SGD updates across all shards on a worker
//     pool while staying deterministic for a fixed seed regardless of the
//     shard count:
//
//     – every node owns a private RNG stream derived from the master seed
//     and its node id (per-node rather than per-shard, because the
//     node→shard assignment changes with P and determinism across P is
//     a hard requirement);
//     – peer coordinates are read from an epoch-start snapshot, so a
//     node's updates depend only on its own history, its own stream,
//     and the snapshot — never on sibling scheduling;
//     – the one cross-shard *write* of the protocol — the ABW target
//     update of Algorithm 2 (eq. 13) — is routed through per-shard
//     mailboxes and applied at the epoch barrier in a sorted,
//     P-independent order.
//
//     The update equations are exactly those of Algorithms 1 and 2; only
//     the schedule differs (epoch-synchronous Jacobi instead of sample-
//     asynchronous Gauss-Seidel), which is the standard parallel-SGD
//     trade and converges to the same quality at the same budget.
//
//   - Block-parallel evaluation helpers (Blocks, ScorePairs) that spread
//     prediction and accumulation over row-blocks of the test-pair set so
//     evaluating O(n²) held-out pairs scales with cores. Parallel scoring
//     is bit-identical to sequential scoring: workers write disjoint index
//     ranges computed from the same snapshot.
package engine
