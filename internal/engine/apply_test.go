package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dmfsgd/internal/sgd"
	"dmfsgd/internal/vec"
)

// testBatch draws a deterministic batch of neighbor-pair samples with ±1
// labels, including repeated observers so per-node ordering matters.
func testBatch(e *Engine, size int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	n := e.N()
	batch := make([]Sample, 0, size)
	for len(batch) < size {
		i := rng.Intn(n)
		j := e.neighbors[i][rng.Intn(len(e.neighbors[i]))]
		label := 1.0
		if rng.Float64() < 0.5 {
			label = -1
		}
		batch = append(batch, Sample{I: i, J: j, Label: label})
	}
	return batch
}

// TestApplyBatchShardIndependence: for a fixed batch the resulting
// coordinates are bit-identical for every shard/worker count, in both
// update modes, including across several consecutive batches (the
// batch-start snapshot refresh must track the store correctly).
func TestApplyBatchShardIndependence(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		for _, shards := range []int{2, 4, 7} {
			ref := testEngine(t, 60, 8, 1, 1, symmetric, 7)
			e := testEngine(t, 60, 8, shards, shards, symmetric, 7)
			for round := 0; round < 3; round++ {
				batch := testBatch(ref, 500, int64(100+round))
				nRef := ref.ApplyBatch(batch)
				nGot := e.ApplyBatch(batch)
				if nRef != nGot {
					t.Fatalf("symmetric=%v shards=%d round %d: applied %d vs %d", symmetric, shards, round, nGot, nRef)
				}
				coordsEqual(t, ref, e, "batch apply")
			}
			if ref.Steps() != e.Steps() {
				t.Fatalf("steps diverge: %d vs %d", ref.Steps(), e.Steps())
			}
		}
	}
}

// TestApplyBatchMatchesManualEpoch: one symmetric batch equals a manual
// Jacobi-style pass — every peer read from the batch-start snapshot,
// per-node samples applied in batch order.
func TestApplyBatchMatchesManualEpoch(t *testing.T) {
	e := testEngine(t, 24, 5, 3, 2, true, 3)
	// Pre-train a little so the snapshot is not the initial state.
	e.Run(200)

	rank := e.store.rank
	u := make([]float64, e.N()*rank)
	v := make([]float64, e.N()*rank)
	e.store.SnapshotInto(u, v)
	manual := make(map[int]*sgd.Coordinates)
	for i := 0; i < e.N(); i++ {
		manual[i] = e.store.Coord(i).Clone()
	}

	batch := testBatch(e, 300, 42)
	for _, sm := range batch {
		ju := u[sm.J*rank : (sm.J+1)*rank]
		jv := v[sm.J*rank : (sm.J+1)*rank]
		e.cfg.SGD.UpdateRTT(manual[sm.I], ju, jv, sm.Label)
	}

	if got := e.ApplyBatch(batch); got != len(batch) {
		t.Fatalf("applied %d of %d", got, len(batch))
	}
	for i := 0; i < e.N(); i++ {
		c := e.store.Coord(i)
		if !vec.Equal(c.U, manual[i].U, 0) || !vec.Equal(c.V, manual[i].V, 0) {
			t.Fatalf("node %d diverges from the manual epoch apply", i)
		}
	}
}

// TestApplyBatchVersions: only shards whose nodes were written advance.
func TestApplyBatchVersions(t *testing.T) {
	e := testEngine(t, 20, 4, 4, 2, true, 5)
	before := e.store.Versions(nil)
	// All samples observed by node 1: only shard 1 mod 4 should move.
	j := e.neighbors[1][0]
	n := e.ApplyBatch([]Sample{{I: 1, J: j, Label: 1}, {I: 1, J: j, Label: -1}})
	if n != 2 {
		t.Fatalf("applied %d, want 2", n)
	}
	after := e.store.Versions(nil)
	for p := range after {
		moved := after[p] != before[p]
		if p == 1%4 && !moved {
			t.Errorf("shard %d did not advance", p)
		}
		if p != 1%4 && moved {
			t.Errorf("shard %d advanced without writes", p)
		}
	}
}

// TestApplyBatchValidation: bad samples are rejected before any apply.
func TestApplyBatchValidation(t *testing.T) {
	e := testEngine(t, 10, 3, 2, 2, true, 1)
	before := e.store.Versions(nil)
	cases := [][]Sample{
		{{I: -1, J: 2, Label: 1}},
		{{I: 0, J: 10, Label: 1}},
		{{I: 3, J: 3, Label: 1}},
		{{I: 0, J: 1, Label: math.NaN()}},
		{{I: 0, J: 1, Label: math.Inf(1)}},
	}
	for _, batch := range cases {
		if _, err := e.ApplyBatchCtx(context.Background(), batch); err == nil {
			t.Errorf("batch %+v accepted", batch)
		}
	}
	if !e.store.VersionsEqual(before) {
		t.Error("rejected batches mutated the store")
	}
	if e.Steps() != 0 {
		t.Errorf("rejected batches counted %d steps", e.Steps())
	}
}

// TestApplyBatchCancelled: a cancelled context aborts between shard
// sweeps, leaves the store valid and returns the context error.
func TestApplyBatchCancelled(t *testing.T) {
	e := testEngine(t, 40, 6, 4, 2, true, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := e.ApplyBatchCtx(ctx, testBatch(e, 100, 1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("cancelled-before-start batch applied %d samples", n)
	}
}
