package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dmfsgd/internal/sgd"
	"dmfsgd/internal/vec"
)

// testBatch draws a deterministic batch of neighbor-pair samples with ±1
// labels, including repeated observers so per-node ordering matters.
func testBatch(e *Engine, size int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	n := e.N()
	batch := make([]Sample, 0, size)
	for len(batch) < size {
		i := rng.Intn(n)
		j := e.neighbors[i][rng.Intn(len(e.neighbors[i]))]
		label := 1.0
		if rng.Float64() < 0.5 {
			label = -1
		}
		batch = append(batch, Sample{I: i, J: j, Label: label})
	}
	return batch
}

// TestApplyBatchShardIndependence: for a fixed batch the resulting
// coordinates are bit-identical for every shard/worker count, in both
// update modes, including across several consecutive batches (the
// batch-start snapshot refresh must track the store correctly).
func TestApplyBatchShardIndependence(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		for _, shards := range []int{2, 4, 7} {
			ref := testEngine(t, 60, 8, 1, 1, symmetric, 7)
			e := testEngine(t, 60, 8, shards, shards, symmetric, 7)
			for round := 0; round < 3; round++ {
				batch := testBatch(ref, 500, int64(100+round))
				nRef := ref.ApplyBatch(batch)
				nGot := e.ApplyBatch(batch)
				if nRef != nGot {
					t.Fatalf("symmetric=%v shards=%d round %d: applied %d vs %d", symmetric, shards, round, nGot, nRef)
				}
				coordsEqual(t, ref, e, "batch apply")
			}
			if ref.Steps() != e.Steps() {
				t.Fatalf("steps diverge: %d vs %d", ref.Steps(), e.Steps())
			}
		}
	}
}

// TestApplyBatchMatchesManualEpoch: one symmetric batch equals a manual
// Jacobi-style pass — every peer read from the batch-start snapshot,
// per-node samples applied in batch order.
func TestApplyBatchMatchesManualEpoch(t *testing.T) {
	e := testEngine(t, 24, 5, 3, 2, true, 3)
	// Pre-train a little so the snapshot is not the initial state.
	e.Run(200)

	rank := e.store.rank
	u := make([]float64, e.N()*rank)
	v := make([]float64, e.N()*rank)
	e.store.SnapshotInto(u, v)
	manual := make(map[int]*sgd.Coordinates)
	for i := 0; i < e.N(); i++ {
		manual[i] = e.store.Coord(i).Clone()
	}

	batch := testBatch(e, 300, 42)
	for _, sm := range batch {
		ju := u[sm.J*rank : (sm.J+1)*rank]
		jv := v[sm.J*rank : (sm.J+1)*rank]
		e.cfg.SGD.UpdateRTT(manual[sm.I], ju, jv, sm.Label)
	}

	if got := e.ApplyBatch(batch); got != len(batch) {
		t.Fatalf("applied %d of %d", got, len(batch))
	}
	for i := 0; i < e.N(); i++ {
		c := e.store.Coord(i)
		if !vec.Equal(c.U, manual[i].U, 0) || !vec.Equal(c.V, manual[i].V, 0) {
			t.Fatalf("node %d diverges from the manual epoch apply", i)
		}
	}
}

// TestApplyBatchVersions: only shards whose nodes were written advance.
func TestApplyBatchVersions(t *testing.T) {
	e := testEngine(t, 20, 4, 4, 2, true, 5)
	before := e.store.Versions(nil)
	// All samples observed by node 1: only shard 1 mod 4 should move.
	j := e.neighbors[1][0]
	n := e.ApplyBatch([]Sample{{I: 1, J: j, Label: 1}, {I: 1, J: j, Label: -1}})
	if n != 2 {
		t.Fatalf("applied %d, want 2", n)
	}
	after := e.store.Versions(nil)
	for p := range after {
		moved := after[p] != before[p]
		if p == 1%4 && !moved {
			t.Errorf("shard %d did not advance", p)
		}
		if p != 1%4 && moved {
			t.Errorf("shard %d advanced without writes", p)
		}
	}
}

// TestApplyBatchValidation: bad samples are rejected before any apply.
func TestApplyBatchValidation(t *testing.T) {
	e := testEngine(t, 10, 3, 2, 2, true, 1)
	before := e.store.Versions(nil)
	cases := [][]Sample{
		{{I: -1, J: 2, Label: 1}},
		{{I: 0, J: 10, Label: 1}},
		{{I: 3, J: 3, Label: 1}},
		{{I: 0, J: 1, Label: math.NaN()}},
		{{I: 0, J: 1, Label: math.Inf(1)}},
	}
	for _, batch := range cases {
		if _, err := e.ApplyBatchCtx(context.Background(), batch); err == nil {
			t.Errorf("batch %+v accepted", batch)
		}
	}
	if !e.store.VersionsEqual(before) {
		t.Error("rejected batches mutated the store")
	}
	if e.Steps() != 0 {
		t.Errorf("rejected batches counted %d steps", e.Steps())
	}
}

// TestApplyBatchCancelled: a cancelled context aborts between shard
// sweeps, leaves the store valid and returns the context error.
func TestApplyBatchCancelled(t *testing.T) {
	e := testEngine(t, 40, 6, 4, 2, true, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := e.ApplyBatchCtx(ctx, testBatch(e, 100, 1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Fatalf("cancelled-before-start batch applied %d samples", n)
	}
}

// ownershipMask marks shards [0,split) as owned when lower, the rest
// when !lower.
func ownershipMask(p, split int, lower bool) []bool {
	owned := make([]bool, p)
	for s := range owned {
		owned[s] = (s < split) == lower
	}
	return owned
}

// TestApplyBatchOwnedPartition: two engines, each owning a disjoint half
// of the shards, that exchange routed target updates and mirror each
// other's owned blocks reproduce a single engine's ApplyBatchCtx
// bit-identically — the cluster lockstep round in miniature.
func TestApplyBatchOwnedPartition(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		ref := testEngine(t, 30, 6, 5, 2, symmetric, 11)
		e0 := testEngine(t, 30, 6, 5, 2, symmetric, 11)
		e1 := testEngine(t, 30, 6, 5, 2, symmetric, 11)
		p := ref.Store().Shards()
		own0 := ownershipMask(p, 2, true)
		own1 := ownershipMask(p, 2, false)
		for round := 0; round < 3; round++ {
			batch := testBatch(ref, 400, int64(7+round))
			nRef, err := ref.ApplyBatchCtx(context.Background(), batch)
			if err != nil {
				t.Fatal(err)
			}
			n0, routed0, err := e0.ApplyBatchOwned(context.Background(), batch, own0)
			if err != nil {
				t.Fatal(err)
			}
			n1, routed1, err := e1.ApplyBatchOwned(context.Background(), batch, own1)
			if err != nil {
				t.Fatal(err)
			}
			if symmetric && (len(routed0) > 0 || len(routed1) > 0) {
				t.Fatal("symmetric apply produced routed updates")
			}
			if n0+n1 != nRef {
				t.Fatalf("partition applied %d+%d, reference %d", n0, n1, nRef)
			}
			if err := e0.CommitBatchTargets(context.Background(), routed1, own0); err != nil {
				t.Fatal(err)
			}
			if err := e1.CommitBatchTargets(context.Background(), routed0, own1); err != nil {
				t.Fatal(err)
			}
			// Mirror the owned blocks across the pair, owner's version
			// travelling with the rows.
			for s := 0; s < p; s++ {
				owner, mirror := e0, e1
				if own1[s] {
					owner, mirror = e1, e0
				}
				rows := owner.Store().ShardNodeCount(s) * owner.Store().Rank()
				u, v := make([]float64, rows), make([]float64, rows)
				ver := owner.Store().SnapshotShardBlock(s, u, v)
				mirror.Store().SetShardBlock(s, u, v, ver)
			}
			coordsEqual(t, ref, e0, "trainer 0")
			coordsEqual(t, ref, e1, "trainer 1")
			if !e0.Store().VersionsEqual(e1.Store().Versions(nil)) {
				t.Fatal("version vectors diverge across the pair")
			}
		}
	}
}

// TestCommitBatchTargetsValidation: inbound routed updates crossing the
// process boundary are rejected before any apply.
func TestCommitBatchTargetsValidation(t *testing.T) {
	e := testEngine(t, 10, 3, 2, 1, false, 3)
	owned := []bool{true, false}
	if _, _, err := e.ApplyBatchOwned(context.Background(), testBatch(e, 10, 1), owned); err != nil {
		t.Fatal(err)
	}
	before := e.store.Versions(nil)
	cases := [][]RoutedTarget{
		{{Target: -1, Sender: 0, X: 1}},
		{{Target: 0, Sender: 10, X: 1}},
		{{Target: 1, Sender: 0, X: 1}}, // shard 1 is not owned
		{{Target: 0, Sender: 1, X: math.NaN()}},
	}
	for _, inbound := range cases {
		if err := e.CommitBatchTargets(context.Background(), inbound, owned); err == nil {
			t.Errorf("inbound %+v accepted", inbound)
		}
	}
	if !e.store.VersionsEqual(before) {
		t.Error("rejected inbound mutated the store")
	}
}
