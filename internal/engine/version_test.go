package engine

import (
	"math/rand"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

func TestStoreVersionCounters(t *testing.T) {
	s := NewStore(8, 2, 4)
	for p := 0; p < 4; p++ {
		if v := s.ShardVersion(p); v != 0 {
			t.Fatalf("fresh shard %d at version %d", p, v)
		}
	}
	s.InitUniform(rand.New(rand.NewSource(1)))
	vers := s.Versions(nil)
	for p, v := range vers {
		if v != 1 {
			t.Fatalf("shard %d at version %d after init, want 1", p, v)
		}
	}
	if !s.VersionsEqual(vers) {
		t.Fatal("VersionsEqual false on its own vector")
	}

	// A successful Ref.Update bumps exactly the owning shard.
	s.Ref(2).Update(func(c *sgd.Coordinates) bool { c.U[0] = 7; return true })
	if v := s.ShardVersion(2); v != 2 {
		t.Fatalf("shard 2 at version %d after update, want 2", v)
	}
	if s.VersionsEqual(vers) {
		t.Fatal("VersionsEqual true after a write")
	}
	for _, p := range []int{0, 1, 3} {
		if v := s.ShardVersion(p); v != 1 {
			t.Fatalf("untouched shard %d at version %d", p, v)
		}
	}

	// A rejected update (fn returns false) does not bump.
	s.Ref(3).Update(func(c *sgd.Coordinates) bool { return false })
	if v := s.ShardVersion(3); v != 1 {
		t.Fatalf("shard 3 at version %d after rejected update, want 1", v)
	}

	// Ref.Set is a write.
	s.Ref(1).Set(&sgd.Coordinates{U: []float64{1, 2}, V: []float64{3, 4}})
	if v := s.ShardVersion(1); v != 2 {
		t.Fatalf("shard 1 at version %d after Set, want 2", v)
	}
}

// TestSnapshotDeltaIntoCopiesOnlyAdvancedShards fills the target buffers
// with garbage and verifies the delta refresh overwrites exactly the rows
// of the shards whose version moved.
func TestSnapshotDeltaIntoCopiesOnlyAdvancedShards(t *testing.T) {
	const n, rank, shards = 10, 3, 4
	s := NewStore(n, rank, shards)
	s.InitUniform(rand.New(rand.NewSource(2)))

	u, v := s.SnapshotFlat()
	vers := s.Versions(nil)
	if copied := s.SnapshotDeltaInto(u, v, vers); copied != 0 {
		t.Fatalf("quiescent delta copied %d shards, want 0", copied)
	}

	// Advance shard 1 (node 5) only.
	s.Ref(5).Update(func(c *sgd.Coordinates) bool { c.V[2] = -9; return true })

	for k := range u {
		u[k], v[k] = 1e99, 1e99
	}
	if copied := s.SnapshotDeltaInto(u, v, vers); copied != 1 {
		t.Fatalf("delta copied %d shards, want 1", copied)
	}
	wantU, wantV := s.SnapshotFlat()
	for i := 0; i < n; i++ {
		fresh := i%shards == 1
		for r := 0; r < rank; r++ {
			gu, gv := u[i*rank+r], v[i*rank+r]
			if fresh {
				if gu != wantU[i*rank+r] || gv != wantV[i*rank+r] {
					t.Fatalf("advanced node %d row not refreshed", i)
				}
			} else if gu != 1e99 || gv != 1e99 {
				t.Fatalf("untouched node %d row was re-copied", i)
			}
		}
	}
	if !s.VersionsEqual(vers) {
		t.Fatal("delta refresh did not advance the version vector")
	}
}

// TestSequentialApplyBumpsVersions: the sequential scheduler's writes
// advance the versions of exactly the shards it touches.
func TestSequentialApplyBumpsVersions(t *testing.T) {
	e := testEngine(t, 12, 4, 3, 1, true, 7)
	base := e.Store().Versions(nil)
	// Symmetric apply writes only node i's shard.
	if !e.Apply(4, 5) {
		t.Skip("pair (4,5) not measurable in this topology")
	}
	after := e.Store().Versions(nil)
	for p := range base {
		want := base[p]
		if p == 4%3 {
			want++
		}
		if after[p] != want {
			t.Fatalf("shard %d version %d, want %d", p, after[p], want)
		}
	}
}

// TestEpochBarrierBumpsVersions: a parallel epoch advances every shard
// that received updates by exactly one, at the barrier.
func TestEpochBarrierBumpsVersions(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		e := testEngine(t, 24, 6, 4, 2, symmetric, 11)
		base := e.Store().Versions(nil)
		if n := e.RunEpoch(4); n == 0 {
			t.Fatalf("symmetric=%v: epoch applied no updates", symmetric)
		}
		after := e.Store().Versions(nil)
		for p := range after {
			// With k=6 probes-per-node=4 on a dense ±1 matrix every shard
			// gets updates; each dirty shard advances exactly once.
			if after[p] != base[p]+1 {
				t.Fatalf("symmetric=%v: shard %d went %d → %d, want +1",
					symmetric, p, base[p], after[p])
			}
		}
	}
}

// TestLabelCacheEquivalence: evaluation output is bit-identical with a
// warm label cache, and the cached labels are reused (same backing array)
// across full-set calls.
func TestLabelCacheEquivalence(t *testing.T) {
	const n, k, seed = 30, 6, 3
	rng := rand.New(rand.NewSource(seed))
	mask, neighbors := mat.NeighborMask(n, k, true, rng)
	labels := mat.NewDense(n, n)
	lrng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if lrng.Float64() < 0.5 {
				labels.Set(i, j, 1)
			} else {
				labels.Set(i, j, -1)
			}
		}
	}
	e, err := New(labels, neighbors, rng, Config{SGD: sgd.Defaults(), Symmetric: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(500)
	var cache PairCache
	spec := EvalSpec{Mask: mask, Truth: labels, Metric: dataset.RTT, Tau: 0, Cache: &cache}
	l1, s1 := EvalSet(e.Store(), spec)
	l2, s2 := EvalSet(e.Store(), spec)
	if len(l1) == 0 {
		t.Fatal("empty evaluation set")
	}
	if &l1[0] != &l2[0] {
		t.Error("full-set labels not shared across cached calls")
	}
	specCold := spec
	specCold.Cache = nil
	l3, s3 := EvalSet(e.Store(), specCold)
	for k := range l1 {
		if l1[k] != l3[k] || s1[k] != s3[k] || s2[k] != s3[k] {
			t.Fatalf("pair %d: cached evaluation diverges from cold", k)
		}
	}
	// A different τ key invalidates the label reuse but not correctness.
	specTau := spec
	specTau.Tau = 0.5
	l4, _ := EvalSet(e.Store(), specTau)
	if len(l4) != len(l1) {
		t.Fatalf("tau'd evaluation has %d pairs, want %d", len(l4), len(l1))
	}
	// Subsampled calls never share the cached labels.
	specSub := spec
	specSub.MaxPairs = 10
	l5, _ := EvalSet(e.Store(), specSub)
	if len(l5) != 10 {
		t.Fatalf("subsample returned %d labels", len(l5))
	}
}
