package engine

import (
	"context"
	"math/rand"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"dmfsgd/internal/metrics"
)

// abwDelivery is one routed cross-shard update: the Algorithm-2 target
// update (eq. 13) of node target, triggered by sender's k-th probe of the
// epoch. The sender's uᵢ is looked up in the epoch snapshot at apply time,
// so the delivery itself stays three words.
type abwDelivery struct {
	target, sender int32
	k              int32
	x              float64
}

// DeriveSeed derives the i-th private stream from a master seed with a
// splitmix64 finalizer — the engine uses it for the per-node RNG
// streams of the parallel scheduler (streams are per node, not per
// shard: the node→shard assignment changes with P, and epoch results
// must not), and the ingestion layer's scenario decorators use the
// same construction for their per-node schedules.
func DeriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ensureEpochState lazily builds the per-node RNG streams, the snapshot
// buffers, and the shard mailboxes.
func (e *Engine) ensureEpochState() {
	if e.nodeRNG != nil {
		return
	}
	n, rank, p := e.store.n, e.store.rank, e.store.shards
	e.nodeRNG = make([]*rand.Rand, n)
	e.nodeSrc = make([]*CountingSource, n)
	for i := range e.nodeRNG {
		// Counting sources so the stream positions are checkpointable;
		// value-transparent, so epoch results are unchanged.
		e.nodeSrc[i] = NewCountingSource(DeriveSeed(e.cfg.Seed, i))
		e.nodeRNG[i] = rand.New(e.nodeSrc[i])
	}
	e.snapU = make([]float64, n*rank)
	e.snapV = make([]float64, n*rank)
	e.snapVers = make([]uint64, p)
	e.counts = make([]int, p)
	e.dirty = make([]bool, p)
	e.out = make([][][]abwDelivery, p)
	for s := range e.out {
		e.out[s] = make([][]abwDelivery, p)
	}
	e.inbox = make([][]abwDelivery, p)
	e.inmail = make([][]abwDelivery, p)
}

// RunEpoch executes one parallel training epoch: every node issues
// probesPerNode probes at its neighbors, reading peer coordinates from an
// epoch-start snapshot and updating its own vectors in place. Shards are
// swept concurrently by a worker pool; the cross-shard ABW target updates
// are routed through mailboxes and applied at the epoch barrier in sorted
// (target, sender, probe) order. For a fixed seed the resulting
// coordinates are bit-identical for every shard count (see package doc).
//
// Returns the number of successful updates (probes of missing pairs fail
// and are not retried — an epoch is a fixed probing schedule, not a
// budget). RunEpoch requires exclusive use of the store: do not run it
// concurrently with Ref access or with itself.
func (e *Engine) RunEpoch(probesPerNode int) int {
	total, _ := e.RunEpochCtx(context.Background(), probesPerNode)
	return total
}

// RunEpochCtx is RunEpoch with cancellation at shard granularity: workers
// poll ctx before claiming the next shard sweep, so a cancelled epoch
// returns after at most one in-flight sweep per worker and leaks no
// goroutines. An interrupted epoch leaves the store valid but incomplete —
// the shards already swept keep their updates (and, in asymmetric mode,
// undelivered mailbox updates are dropped like lost probes); the
// cross-shard determinism contract holds only for epochs that complete.
// Returns the successful updates applied and, when interrupted, the
// context's error.
func (e *Engine) RunEpochCtx(ctx context.Context, probesPerNode int) (int, error) {
	if probesPerNode <= 0 {
		panic("engine: probesPerNode must be positive")
	}
	start := startTimer()
	total := 0
	// The pprof label attributes worker-pool samples to the epoch
	// scheduler in -pprof profiles.
	pprof.Do(ctx, pprof.Labels("dmf_phase", "epoch"), func(ctx context.Context) {
		total = e.runEpochLabeled(ctx, probesPerNode)
	})
	dur := sinceDur(start)
	mEpochSec.Observe(dur.Seconds())
	mSteps.Add(uint64(total))
	metrics.Emit("epoch", dur,
		metrics.KV{K: "updates", V: int64(total)},
		metrics.KV{K: "steps", V: int64(e.steps)})
	return total, ctx.Err()
}

// runEpochLabeled is the epoch body; RunEpochCtx wraps it with
// profiling labels and epoch metrics.
func (e *Engine) runEpochLabeled(ctx context.Context, probesPerNode int) int {
	e.ensureEpochState()
	p := e.store.shards
	// Refresh the epoch-start snapshot via the version vector: shards that
	// have not moved since the last materialization (missing-data shards,
	// or quiet stretches between training bursts) are skipped.
	e.store.SnapshotDeltaInto(e.snapU, e.snapV, e.snapVers)
	for s := 0; s < p; s++ {
		e.counts[s] = 0
		e.dirty[s] = false
		for d := 0; d < p; d++ {
			e.out[s][d] = e.out[s][d][:0]
		}
	}

	e.forEachShard(ctx, func(s int) { e.counts[s] = e.probeShard(s, probesPerNode) })
	if !e.cfg.Symmetric && ctx.Err() == nil {
		e.forEachShard(ctx, func(s int) { e.drainShard(s) })
	}

	// The epoch barrier: advance the version of every shard that was
	// written (its own nodes probed successfully, or routed target updates
	// were applied to it). Exclusive discipline — no locks needed.
	for s := 0; s < p; s++ {
		if e.dirty[s] {
			e.store.bumpShard(s)
		}
	}

	total := 0
	for _, c := range e.counts {
		total += c
	}
	e.steps += total
	return total
}

// RunEpochs runs a fixed number of epochs and returns the cumulative
// successful updates.
func (e *Engine) RunEpochs(epochs, probesPerNode int) int {
	total, _ := e.RunEpochsCtx(context.Background(), epochs, probesPerNode)
	return total
}

// RunEpochsCtx runs up to epochs epochs, checking ctx between epochs and at
// shard granularity within one (see RunEpochCtx). Returns the cumulative
// successful updates and, when interrupted, the context's error.
func (e *Engine) RunEpochsCtx(ctx context.Context, epochs, probesPerNode int) (int, error) {
	total := 0
	for ep := 0; ep < epochs; ep++ {
		n, err := e.RunEpochCtx(ctx, probesPerNode)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// RunEpochBudget runs epochs until at least total successful updates have
// accumulated (the epoch analogue of Run's retry-to-budget semantics) and
// returns the updates performed.
func (e *Engine) RunEpochBudget(total, probesPerNode int) int {
	done := 0
	for done < total {
		got := e.RunEpoch(probesPerNode)
		done += got
		if got == 0 {
			// Nothing measurable anywhere: avoid spinning forever.
			break
		}
	}
	return done
}

// forEachShard runs fn(s) for every shard on the worker pool. Workers poll
// ctx before claiming a shard and stop claiming once it is cancelled; all
// spawned goroutines are joined before returning.
func (e *Engine) forEachShard(ctx context.Context, fn func(s int)) {
	p := e.store.shards
	w := e.workers()
	if w > p {
		w = p
	}
	if w <= 1 {
		for s := 0; s < p; s++ {
			if ctx.Err() != nil {
				return
			}
			fn(s)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				s := int(next.Add(1))
				if s >= p {
					return
				}
				fn(s)
			}
		}()
	}
	wg.Wait()
}

// probeShard sweeps one shard's nodes in ascending order. Each node draws
// its probe targets from its private stream and updates only its own
// coordinates; peer reads come from the epoch snapshot, so no lock is
// needed anywhere on this path.
func (e *Engine) probeShard(s, probesPerNode int) int {
	sh := &e.store.sh[s]
	rank := e.store.rank
	success := 0
	for li, i := range sh.nodes {
		c := sh.coords[li]
		rng := e.nodeRNG[i]
		nb := e.neighbors[i]
		for k := 0; k < probesPerNode; k++ {
			j := nb[rng.Intn(len(nb))]
			if e.labels.IsMissing(i, j) {
				continue // failed probe; epochs do not retry
			}
			x := e.labels.At(i, j) / e.scale
			ju := e.snapU[j*rank : (j+1)*rank]
			jv := e.snapV[j*rank : (j+1)*rank]
			if e.cfg.Symmetric {
				// Algorithm 1: both of i's vectors move against j's
				// epoch-start coordinates.
				e.cfg.SGD.UpdateRTT(c, ju, jv, x)
			} else {
				// Algorithm 2: the sender update (eq. 12) fires here
				// against the pre-epoch vⱼ (the reply carries pre-update
				// coordinates); the target update (eq. 13) is routed to
				// j's shard.
				d := e.store.ShardOf(j)
				if e.cfg.MailboxCap > 0 && len(e.out[s][d]) >= e.cfg.MailboxCap {
					continue // mailbox full: the probe is lost
				}
				e.cfg.SGD.UpdateABWSender(c, jv, x)
				e.out[s][d] = append(e.out[s][d], abwDelivery{
					target: int32(j), sender: int32(i), k: int32(k), x: x,
				})
			}
			success++
		}
	}
	if success > 0 {
		e.dirty[s] = true // workers write only their own shard's slot
	}
	return success
}

// drainShard applies every routed target update addressed to shard s. The
// merged mailbox is sorted by (target, sender, probe) — a total order that
// does not depend on which source shard a delivery came from — so the
// apply sequence, and therefore the floating-point result, is identical
// for every P.
func (e *Engine) drainShard(s int) {
	in := e.inbox[s][:0]
	for src := 0; src < e.store.shards; src++ {
		in = append(in, e.out[src][s]...)
	}
	// Routed updates from remote trainers (cluster apply path) merge into
	// the same sort, so the apply order is the one a single engine that
	// saw the whole batch would have used.
	in = append(in, e.inmail[s]...)
	e.inmail[s] = e.inmail[s][:0]
	sort.Slice(in, func(a, b int) bool {
		if in[a].target != in[b].target {
			return in[a].target < in[b].target
		}
		if in[a].sender != in[b].sender {
			return in[a].sender < in[b].sender
		}
		return in[a].k < in[b].k
	})
	rank := e.store.rank
	for _, d := range in {
		su := e.snapU[int(d.sender)*rank : (int(d.sender)+1)*rank]
		e.cfg.SGD.UpdateABWTarget(e.store.Coord(int(d.target)), su, d.x)
	}
	if len(in) > 0 {
		e.dirty[s] = true
	}
	e.inbox[s] = in[:0]
}
