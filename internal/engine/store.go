package engine

import (
	"fmt"
	"math/rand"
	"sync"

	"dmfsgd/internal/sgd"
	"dmfsgd/internal/vec"
)

// Store holds the coordinates of n nodes partitioned across P shards.
// Node i belongs to shard i mod P; within a shard, nodes are stored in
// ascending global order in one contiguous backing array (U row then V row
// per node), which keeps a shard's epoch sweep cache-friendly.
//
// Two access disciplines coexist:
//
//   - exclusive: a single goroutine (the sequential driver, or the epoch
//     scheduler's per-shard workers) addresses coordinates directly via
//     Coord — no locking;
//   - shared: concurrent callers (runtime nodes, live evaluation) go
//     through Ref handles, which take the owning shard's RWMutex.
//
// Every shard carries a monotonic version counter bumped by every write
// discipline (sequential applies, the epoch barrier, Ref updates), so
// snapshot consumers can detect — and skip copying — shards that have not
// moved since their last materialization.
type Store struct {
	n, rank, shards int
	sh              []shard
}

type shard struct {
	mu     sync.RWMutex
	ver    uint64             // bumped on every coordinate write
	nodes  []int              // global ids owned by this shard, ascending
	coords []*sgd.Coordinates // parallel to nodes; slices alias back
	back   []float64          // [u₀ v₀ u₁ v₁ …] of the owned nodes
}

// NewStore allocates a store for n nodes of the given rank across shards
// partitions (clamped to [1, n]). Coordinates start at zero; fill them with
// InitUniform or per-node Ref.Set.
func NewStore(n, rank, shards int) *Store {
	if n <= 0 || rank <= 0 {
		panic(fmt.Sprintf("engine: store needs n>0, rank>0; got n=%d rank=%d", n, rank))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	s := &Store{n: n, rank: rank, shards: shards, sh: make([]shard, shards)}
	for p := range s.sh {
		count := (n - p + shards - 1) / shards
		sh := &s.sh[p]
		sh.nodes = make([]int, 0, count)
		sh.coords = make([]*sgd.Coordinates, 0, count)
		sh.back = make([]float64, count*2*rank)
		off := 0
		for i := p; i < n; i += shards {
			sh.nodes = append(sh.nodes, i)
			sh.coords = append(sh.coords, &sgd.Coordinates{
				U: sh.back[off : off+rank : off+rank],
				V: sh.back[off+rank : off+2*rank : off+2*rank],
			})
			off += 2 * rank
		}
	}
	return s
}

// NewSoloStore is the single-node store used by standalone runtime nodes
// (UDP deployments) that are not part of a swarm-wide store.
func NewSoloStore(rank int) *Store { return NewStore(1, rank, 1) }

// N returns the node count.
func (s *Store) N() int { return s.n }

// Rank returns the coordinate dimensionality.
func (s *Store) Rank() int { return s.rank }

// Shards returns the partition count P.
func (s *Store) Shards() int { return s.shards }

// ShardOf returns the shard owning node i.
func (s *Store) ShardOf(i int) int { return i % s.shards }

// Coord returns node i's live coordinates with no synchronization. Only for
// exclusive-access contexts (the sequential driver, epoch workers on their
// own shard, quiescent evaluation).
func (s *Store) Coord(i int) *sgd.Coordinates {
	return s.sh[i%s.shards].coords[i/s.shards]
}

// InitUniform draws every node's coordinates from Uniform[0,1) in ascending
// node order (U row then V row per node), consuming rng exactly as a loop
// of sgd.NewCoordinates calls would — this is what keeps fixed-seed runs of
// the sequential driver bit-compatible across shard counts.
func (s *Store) InitUniform(rng *rand.Rand) {
	for i := 0; i < s.n; i++ {
		c := s.Coord(i)
		vec.RandUniform(rng, c.U)
		vec.RandUniform(rng, c.V)
	}
	for p := range s.sh {
		s.sh[p].ver++
	}
}

// bump advances the version of node i's shard. Exclusive contexts only
// (the sequential driver, epoch barrier); shared writers bump under the
// shard lock inside Ref.Update.
func (s *Store) bump(i int) { s.sh[i%s.shards].ver++ }

// bumpShard advances shard p's version. Exclusive contexts only.
func (s *Store) bumpShard(p int) { s.sh[p].ver++ }

// ShardVersion returns shard p's current version.
func (s *Store) ShardVersion(p int) uint64 {
	sh := &s.sh[p]
	sh.mu.RLock()
	v := sh.ver
	sh.mu.RUnlock()
	return v
}

// Versions fills dst (allocating when nil or mis-sized) with the per-shard
// version vector, reading each shard's counter under its lock.
func (s *Store) Versions(dst []uint64) []uint64 {
	if len(dst) != s.shards {
		dst = make([]uint64, s.shards)
	}
	for p := range s.sh {
		dst[p] = s.ShardVersion(p)
	}
	return dst
}

// VersionsEqual reports whether the store's current version vector equals
// vers. A false result means at least one shard has been written since
// vers was captured; a true result is point-in-time per shard, like any
// snapshot of a live store.
func (s *Store) VersionsEqual(vers []uint64) bool {
	if len(vers) != s.shards {
		return false
	}
	for p := range s.sh {
		if s.ShardVersion(p) != vers[p] {
			return false
		}
	}
	return true
}

// SnapshotInto copies every node's coordinates into flat row-major arrays
// (node i's rows at [i*rank, (i+1)*rank)), taking each shard's read lock
// once. u and v must have length n*rank.
func (s *Store) SnapshotInto(u, v []float64) {
	if len(u) != s.n*s.rank || len(v) != s.n*s.rank {
		panic(fmt.Sprintf("engine: snapshot buffers %d/%d, want %d", len(u), len(v), s.n*s.rank))
	}
	for p := range s.sh {
		sh := &s.sh[p]
		sh.mu.RLock()
		for li, i := range sh.nodes {
			copy(u[i*s.rank:(i+1)*s.rank], sh.coords[li].U)
			copy(v[i*s.rank:(i+1)*s.rank], sh.coords[li].V)
		}
		sh.mu.RUnlock()
	}
}

// SnapshotFlat allocates and returns flat row-major copies of U and V.
func (s *Store) SnapshotFlat() (u, v []float64) {
	u = make([]float64, s.n*s.rank)
	v = make([]float64, s.n*s.rank)
	s.SnapshotInto(u, v)
	return u, v
}

// SnapshotDeltaInto refreshes a previously materialized snapshot in place:
// it re-copies only the shards whose version differs from vers[p], updates
// vers to the versions actually copied, and returns the number of shards
// copied. u and v must hold the rows materialized at vers (length n·rank
// each) — rows of skipped shards are left untouched, which is what makes
// the refresh cheaper than SnapshotInto when most shards are quiet. The
// version read and the row copy happen under one shard read-lock, so each
// shard's rows and version stay mutually consistent even under live
// writers.
func (s *Store) SnapshotDeltaInto(u, v []float64, vers []uint64) int {
	if len(u) != s.n*s.rank || len(v) != s.n*s.rank {
		panic(fmt.Sprintf("engine: snapshot buffers %d/%d, want %d", len(u), len(v), s.n*s.rank))
	}
	if len(vers) != s.shards {
		panic(fmt.Sprintf("engine: version vector length %d, want %d", len(vers), s.shards))
	}
	copied := 0
	for p := range s.sh {
		sh := &s.sh[p]
		sh.mu.RLock()
		if sh.ver == vers[p] {
			sh.mu.RUnlock()
			continue
		}
		for li, i := range sh.nodes {
			copy(u[i*s.rank:(i+1)*s.rank], sh.coords[li].U)
			copy(v[i*s.rank:(i+1)*s.rank], sh.coords[li].V)
		}
		vers[p] = sh.ver
		sh.mu.RUnlock()
		copied++
	}
	mSnapshotShards.Add(uint64(copied))
	return copied
}

// RestoreFlat overwrites every node's coordinates from flat row-major
// arrays (node i's rows at [i·rank, (i+1)·rank)) and sets the per-shard
// version counters to vers — the checkpoint-restore inverse of
// SnapshotInto + Versions. Versions are set, not bumped: a restored
// store reports exactly the vector the state was captured at, so delta
// consumers (snapshot refresh, replication) resume from the right
// point. Each shard's rows and version are written under its lock.
func (s *Store) RestoreFlat(u, v []float64, vers []uint64) {
	if len(u) != s.n*s.rank || len(v) != s.n*s.rank {
		panic(fmt.Sprintf("engine: restore buffers %d/%d, want %d", len(u), len(v), s.n*s.rank))
	}
	if len(vers) != s.shards {
		panic(fmt.Sprintf("engine: restore version vector length %d, want %d", len(vers), s.shards))
	}
	for p := range s.sh {
		sh := &s.sh[p]
		sh.mu.Lock()
		for li, i := range sh.nodes {
			copy(sh.coords[li].U, u[i*s.rank:(i+1)*s.rank])
			copy(sh.coords[li].V, v[i*s.rank:(i+1)*s.rank])
		}
		sh.ver = vers[p]
		sh.mu.Unlock()
	}
}

// SetShardBlock overwrites shard p's rows from packed row-major arrays
// (the shard's nodes in ascending global order, one rank-length U row and
// V row per node — the layout replication and cluster mirror frames use)
// and sets the shard's version to ver. Like RestoreFlat, the version is
// set rather than bumped: a mirrored shard reports the version its owner
// assigned, so version vectors stay comparable across trainers. Rows and
// version are written under the shard lock.
func (s *Store) SetShardBlock(p int, u, v []float64, ver uint64) {
	if p < 0 || p >= s.shards {
		panic(fmt.Sprintf("engine: shard %d out of [0,%d)", p, s.shards))
	}
	sh := &s.sh[p]
	want := len(sh.nodes) * s.rank
	if len(u) != want || len(v) != want {
		panic(fmt.Sprintf("engine: shard block %d/%d floats, want %d", len(u), len(v), want))
	}
	sh.mu.Lock()
	for li := range sh.nodes {
		copy(sh.coords[li].U, u[li*s.rank:(li+1)*s.rank])
		copy(sh.coords[li].V, v[li*s.rank:(li+1)*s.rank])
	}
	sh.ver = ver
	sh.mu.Unlock()
}

// SnapshotShardBlock copies shard p's rows into packed row-major arrays
// (the SetShardBlock layout) under the shard read-lock and returns the
// version the rows were copied at. u and v must each hold
// ShardNodeCount(p)·rank floats.
func (s *Store) SnapshotShardBlock(p int, u, v []float64) uint64 {
	if p < 0 || p >= s.shards {
		panic(fmt.Sprintf("engine: shard %d out of [0,%d)", p, s.shards))
	}
	sh := &s.sh[p]
	want := len(sh.nodes) * s.rank
	if len(u) != want || len(v) != want {
		panic(fmt.Sprintf("engine: shard block %d/%d floats, want %d", len(u), len(v), want))
	}
	sh.mu.RLock()
	for li := range sh.nodes {
		copy(u[li*s.rank:(li+1)*s.rank], sh.coords[li].U)
		copy(v[li*s.rank:(li+1)*s.rank], sh.coords[li].V)
	}
	ver := sh.ver
	sh.mu.RUnlock()
	return ver
}

// ShardNodeCount returns the number of nodes shard p owns.
func (s *Store) ShardNodeCount(p int) int { return len(s.sh[p].nodes) }

// SetShardVersion sets shard p's version counter under the shard lock.
// Cluster mirrors use it to stamp an owner-assigned version on a shard
// whose rows did not change this round.
func (s *Store) SetShardVersion(p int, ver uint64) {
	sh := &s.sh[p]
	sh.mu.Lock()
	sh.ver = ver
	sh.mu.Unlock()
}

// Ref returns a locked handle to node i's coordinates.
func (s *Store) Ref(i int) Ref {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("engine: ref index %d out of [0,%d)", i, s.n))
	}
	return Ref{s: s, id: i}
}

// Ref is a handle to one node's slot in a Store. All methods synchronize on
// the owning shard's lock, so any number of runtime nodes and evaluators
// may use refs concurrently. The zero Ref is invalid.
type Ref struct {
	s  *Store
	id int
}

// Valid reports whether the ref points at a store slot.
func (r Ref) Valid() bool { return r.s != nil }

// ID returns the node index within the store.
func (r Ref) ID() int { return r.id }

// View runs fn with read access to the coordinates. fn must not retain or
// mutate them.
func (r Ref) View(fn func(c *sgd.Coordinates)) {
	sh := &r.s.sh[r.id%r.s.shards]
	sh.mu.RLock()
	fn(sh.coords[r.id/r.s.shards])
	sh.mu.RUnlock()
}

// Update runs fn with exclusive access to the coordinates and returns fn's
// result (conventionally: whether an update was applied). A true result
// bumps the owning shard's version.
func (r Ref) Update(fn func(c *sgd.Coordinates) bool) bool {
	sh := &r.s.sh[r.id%r.s.shards]
	t0 := startTimer()
	sh.mu.Lock()
	observeSince(mLockWait, t0)
	ok := fn(sh.coords[r.id/r.s.shards])
	if ok {
		sh.ver++
		mSteps.Inc()
	}
	sh.mu.Unlock()
	return ok
}

// Snapshot returns an independent copy of the coordinates.
func (r Ref) Snapshot() *sgd.Coordinates {
	var out *sgd.Coordinates
	r.View(func(c *sgd.Coordinates) { out = c.Clone() })
	return out
}

// Set copies the values of c into the slot.
func (r Ref) Set(c *sgd.Coordinates) {
	r.Update(func(dst *sgd.Coordinates) bool {
		copy(dst.U, c.U)
		copy(dst.V, c.V)
		return true
	})
}
