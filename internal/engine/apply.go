package engine

import (
	"context"
	"fmt"
	"math"
)

// Sample is one externally supplied labeled measurement for the batch
// apply path: node I consumed training label Label (a class ±1 or a
// scaled quantity, in the same units as the label matrix) for the path
// I → J. Batches of samples come from the ingestion layer — trace
// replay, NDJSON streams, scenario-decorated sources — rather than from
// the engine's own probe sampling.
type Sample struct {
	// I is the observing node, J the probed node.
	I, J int
	// Label is the training label the measurement yielded.
	Label float64
}

// RoutedTarget is one cross-shard ABW target update leaving the local
// partition: node Target's vⱼ must move against Sender's batch-start uᵢ
// with scaled label X. K is the sample's batch index — the deterministic
// (target, sender, k) apply-order tie-break — so a remote owner merging
// routed updates from several trainers applies them in the same total
// order a single engine would have.
type RoutedTarget struct {
	Target, Sender, K int32
	X                 float64
}

// ApplyBatch applies one epoch-style batch of externally supplied
// samples; see ApplyBatchCtx.
func (e *Engine) ApplyBatch(batch []Sample) int {
	n, _ := e.ApplyBatchCtx(context.Background(), batch)
	return n
}

// ApplyBatchCtx trains on one batch of externally supplied measurements
// through the sharded epoch path: peer coordinates are read from a
// batch-start snapshot, each shard's samples are applied by a worker in
// batch order, and (in asymmetric mode) the cross-shard target updates
// are routed through the epoch mailboxes and applied in sorted
// (target, sender, batch index) order at the barrier. This is the epoch
// analogue of ApplyLabel: where ApplyLabel streams Gauss-Seidel updates
// one at a time, ApplyBatchCtx treats the batch as one synchronous
// training epoch over whatever measurements the ingestion layer
// grouped together.
//
// For a fixed batch the resulting coordinates are bit-identical for
// every shard and worker count: a sample only writes its observing
// node's vectors (all of one node's samples live in one shard and apply
// in batch order), peer reads come from the immutable batch-start
// snapshot, and the mailbox merge order is independent of the shard
// partition. Like RunEpochCtx, a cancelled call leaves the store valid
// but incomplete and returns the context's error; the cross-shard
// determinism contract holds for batches that complete.
//
// ApplyBatchCtx requires exclusive use of the store (do not run it
// concurrently with itself, Run, RunEpoch or Ref access). Samples with
// out-of-range node ids or a non-finite label are rejected with an
// error before anything is applied.
func (e *Engine) ApplyBatchCtx(ctx context.Context, batch []Sample) (int, error) {
	total, _, err := e.ApplyBatchOwned(ctx, batch, nil)
	if err != nil {
		return 0, err
	}
	if err := e.CommitBatchTargets(ctx, nil, nil); err != nil {
		return total, err
	}
	e.steps += total
	return total, ctx.Err()
}

// ApplyBatchOwned is the sender half of ApplyBatchCtx restricted to a
// shard-ownership mask: it refreshes the batch-start snapshot, then
// applies the sender updates of every sample whose observing node lives
// in an owned shard (owned == nil means all shards are owned — the
// single-trainer case). Cross-shard target updates destined to owned
// shards stay queued in the epoch mailboxes for CommitBatchTargets;
// updates destined to shards owned elsewhere are returned as routed
// tuples for the cluster layer to ship to their owners.
//
// The batch must be the same on every trainer of a lockstep round: each
// trainer applies its owned slice against the identical batch-start
// snapshot, and the union of all trainers' work equals one
// ApplyBatchCtx on a single engine (pinned by the cluster tests).
// Returns the sender updates applied; validation errors reject the
// whole batch before anything is applied. ApplyBatchOwned does not
// advance the step counter or shard versions — that is
// CommitBatchTargets' barrier.
func (e *Engine) ApplyBatchOwned(ctx context.Context, batch []Sample, owned []bool) (int, []RoutedTarget, error) {
	start := startTimer()
	defer func() {
		observeSince(mBatchSec, start)
	}()
	if len(batch) > math.MaxInt32 {
		return 0, nil, fmt.Errorf("engine: batch of %d samples exceeds the %d limit", len(batch), math.MaxInt32)
	}
	n := e.store.n
	p := e.store.shards
	if owned != nil && len(owned) != p {
		return 0, nil, fmt.Errorf("engine: ownership mask over %d shards, store has %d", len(owned), p)
	}
	for idx, sm := range batch {
		if sm.I < 0 || sm.I >= n || sm.J < 0 || sm.J >= n || sm.I == sm.J {
			return 0, nil, fmt.Errorf("engine: batch sample %d has invalid pair (%d,%d) for %d nodes", idx, sm.I, sm.J, n)
		}
		if math.IsNaN(sm.Label) || math.IsInf(sm.Label, 0) {
			return 0, nil, fmt.Errorf("engine: batch sample %d has non-finite label %v", idx, sm.Label)
		}
	}
	e.ensureEpochState()
	// Refresh the batch-start snapshot via the version vector (only
	// shards that moved since the last materialization are re-copied).
	e.store.SnapshotDeltaInto(e.snapU, e.snapV, e.snapVers)
	if e.groups == nil {
		e.groups = make([][]int32, p)
	}
	for s := 0; s < p; s++ {
		e.counts[s] = 0
		e.dirty[s] = false
		e.groups[s] = e.groups[s][:0]
		e.inmail[s] = e.inmail[s][:0]
		for d := 0; d < p; d++ {
			e.out[s][d] = e.out[s][d][:0]
		}
	}
	// Group sample indices by the observing node's shard, preserving
	// batch order within each shard; samples observed by nodes in shards
	// owned elsewhere are that owner's work.
	for idx, sm := range batch {
		s := e.store.ShardOf(sm.I)
		if owned == nil || owned[s] {
			e.groups[s] = append(e.groups[s], int32(idx))
		}
	}

	e.forEachShard(ctx, func(s int) { e.counts[s] = e.applyBatchShard(s, batch) })

	// Extract the deliveries addressed to shards owned elsewhere: they
	// are routed over the wire instead of drained locally.
	var routed []RoutedTarget
	if owned != nil && !e.cfg.Symmetric {
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				if owned[d] {
					continue
				}
				for _, dv := range e.out[s][d] {
					routed = append(routed, RoutedTarget{Target: dv.target, Sender: dv.sender, K: dv.k, X: dv.x})
				}
				e.out[s][d] = e.out[s][d][:0]
			}
		}
	}

	total := 0
	for _, c := range e.counts {
		total += c
	}
	mSteps.Add(uint64(total))
	return total, routed, nil
}

// CommitBatchTargets is the barrier half of ApplyBatchCtx: it merges the
// queued local mailbox deliveries with inbound routed tuples from remote
// trainers, applies each owned shard's target updates in sorted
// (target, sender, batch index) order against the batch-start snapshot,
// and advances the version of every shard written this batch. owned and
// inbound follow ApplyBatchOwned: nil owned means all shards, and
// inbound tuples must address owned shards (anything else — or a
// non-finite X — rejects the whole inbound set before any update is
// applied, since routed tuples cross a process boundary).
func (e *Engine) CommitBatchTargets(ctx context.Context, inbound []RoutedTarget, owned []bool) error {
	n := e.store.n
	p := e.store.shards
	if owned != nil && len(owned) != p {
		return fmt.Errorf("engine: ownership mask over %d shards, store has %d", len(owned), p)
	}
	e.ensureEpochState()
	if e.cfg.Symmetric && len(inbound) > 0 {
		return fmt.Errorf("engine: routed updates are asymmetric-only, engine is symmetric")
	}
	for idx, rt := range inbound {
		if rt.Target < 0 || int(rt.Target) >= n || rt.Sender < 0 || int(rt.Sender) >= n {
			return fmt.Errorf("engine: routed update %d has invalid pair (%d,%d) for %d nodes", idx, rt.Sender, rt.Target, n)
		}
		if s := e.store.ShardOf(int(rt.Target)); owned != nil && !owned[s] {
			return fmt.Errorf("engine: routed update %d targets shard %d, which is not owned here", idx, s)
		}
		if math.IsNaN(rt.X) || math.IsInf(rt.X, 0) {
			return fmt.Errorf("engine: routed update %d has non-finite label %v", idx, rt.X)
		}
	}
	for _, rt := range inbound {
		s := e.store.ShardOf(int(rt.Target))
		e.inmail[s] = append(e.inmail[s], abwDelivery{target: rt.Target, sender: rt.Sender, k: rt.K, x: rt.X})
	}
	if !e.cfg.Symmetric && ctx.Err() == nil {
		e.forEachShard(ctx, func(s int) {
			if owned == nil || owned[s] {
				e.drainShard(s)
			}
		})
	}

	// The epoch barrier: advance every written shard's version once.
	for s := 0; s < p; s++ {
		if e.dirty[s] {
			e.store.bumpShard(s)
		}
	}
	return nil
}

// applyBatchShard applies shard s's samples in batch order. Each sample
// updates only the observing node's vectors (which live in this shard);
// peer reads come from the batch-start snapshot, so no locking is
// needed anywhere on this path.
func (e *Engine) applyBatchShard(s int, batch []Sample) int {
	rank := e.store.rank
	applied := 0
	for _, idx := range e.groups[s] {
		sm := batch[idx]
		x := sm.Label / e.scale
		c := e.store.Coord(sm.I)
		ju := e.snapU[sm.J*rank : (sm.J+1)*rank]
		jv := e.snapV[sm.J*rank : (sm.J+1)*rank]
		if e.cfg.Symmetric {
			// Algorithm 1: both of the observer's vectors move against
			// the peer's batch-start coordinates.
			e.cfg.SGD.UpdateRTT(c, ju, jv, x)
		} else {
			// Algorithm 2: the sender update fires here against the
			// batch-start vⱼ; the target update is routed to j's shard
			// with the batch index as the tie-break sequence.
			d := e.store.ShardOf(sm.J)
			if e.cfg.MailboxCap > 0 && len(e.out[s][d]) >= e.cfg.MailboxCap {
				continue // mailbox full: the measurement is lost
			}
			e.cfg.SGD.UpdateABWSender(c, jv, x)
			e.out[s][d] = append(e.out[s][d], abwDelivery{
				target: int32(sm.J), sender: int32(sm.I), k: idx, x: x,
			})
		}
		applied++
	}
	if applied > 0 {
		e.dirty[s] = true
	}
	return applied
}
