package engine

import (
	"context"
	"fmt"
	"math"
)

// Sample is one externally supplied labeled measurement for the batch
// apply path: node I consumed training label Label (a class ±1 or a
// scaled quantity, in the same units as the label matrix) for the path
// I → J. Batches of samples come from the ingestion layer — trace
// replay, NDJSON streams, scenario-decorated sources — rather than from
// the engine's own probe sampling.
type Sample struct {
	// I is the observing node, J the probed node.
	I, J int
	// Label is the training label the measurement yielded.
	Label float64
}

// ApplyBatch applies one epoch-style batch of externally supplied
// samples; see ApplyBatchCtx.
func (e *Engine) ApplyBatch(batch []Sample) int {
	n, _ := e.ApplyBatchCtx(context.Background(), batch)
	return n
}

// ApplyBatchCtx trains on one batch of externally supplied measurements
// through the sharded epoch path: peer coordinates are read from a
// batch-start snapshot, each shard's samples are applied by a worker in
// batch order, and (in asymmetric mode) the cross-shard target updates
// are routed through the epoch mailboxes and applied in sorted
// (target, sender, batch index) order at the barrier. This is the epoch
// analogue of ApplyLabel: where ApplyLabel streams Gauss-Seidel updates
// one at a time, ApplyBatchCtx treats the batch as one synchronous
// training epoch over whatever measurements the ingestion layer
// grouped together.
//
// For a fixed batch the resulting coordinates are bit-identical for
// every shard and worker count: a sample only writes its observing
// node's vectors (all of one node's samples live in one shard and apply
// in batch order), peer reads come from the immutable batch-start
// snapshot, and the mailbox merge order is independent of the shard
// partition. Like RunEpochCtx, a cancelled call leaves the store valid
// but incomplete and returns the context's error; the cross-shard
// determinism contract holds for batches that complete.
//
// ApplyBatchCtx requires exclusive use of the store (do not run it
// concurrently with itself, Run, RunEpoch or Ref access). Samples with
// out-of-range node ids or a non-finite label are rejected with an
// error before anything is applied.
func (e *Engine) ApplyBatchCtx(ctx context.Context, batch []Sample) (int, error) {
	if len(batch) > math.MaxInt32 {
		return 0, fmt.Errorf("engine: batch of %d samples exceeds the %d limit", len(batch), math.MaxInt32)
	}
	n := e.store.n
	for idx, sm := range batch {
		if sm.I < 0 || sm.I >= n || sm.J < 0 || sm.J >= n || sm.I == sm.J {
			return 0, fmt.Errorf("engine: batch sample %d has invalid pair (%d,%d) for %d nodes", idx, sm.I, sm.J, n)
		}
		if math.IsNaN(sm.Label) || math.IsInf(sm.Label, 0) {
			return 0, fmt.Errorf("engine: batch sample %d has non-finite label %v", idx, sm.Label)
		}
	}
	e.ensureEpochState()
	p := e.store.shards
	// Refresh the batch-start snapshot via the version vector (only
	// shards that moved since the last materialization are re-copied).
	e.store.SnapshotDeltaInto(e.snapU, e.snapV, e.snapVers)
	if e.groups == nil {
		e.groups = make([][]int32, p)
	}
	for s := 0; s < p; s++ {
		e.counts[s] = 0
		e.dirty[s] = false
		e.groups[s] = e.groups[s][:0]
		for d := 0; d < p; d++ {
			e.out[s][d] = e.out[s][d][:0]
		}
	}
	// Group sample indices by the observing node's shard, preserving
	// batch order within each shard.
	for idx, sm := range batch {
		s := e.store.ShardOf(sm.I)
		e.groups[s] = append(e.groups[s], int32(idx))
	}

	e.forEachShard(ctx, func(s int) { e.counts[s] = e.applyBatchShard(s, batch) })
	if !e.cfg.Symmetric && ctx.Err() == nil {
		e.forEachShard(ctx, func(s int) { e.drainShard(s) })
	}

	// The epoch barrier: advance every written shard's version once.
	for s := 0; s < p; s++ {
		if e.dirty[s] {
			e.store.bumpShard(s)
		}
	}

	total := 0
	for _, c := range e.counts {
		total += c
	}
	e.steps += total
	return total, ctx.Err()
}

// applyBatchShard applies shard s's samples in batch order. Each sample
// updates only the observing node's vectors (which live in this shard);
// peer reads come from the batch-start snapshot, so no locking is
// needed anywhere on this path.
func (e *Engine) applyBatchShard(s int, batch []Sample) int {
	rank := e.store.rank
	applied := 0
	for _, idx := range e.groups[s] {
		sm := batch[idx]
		x := sm.Label / e.scale
		c := e.store.Coord(sm.I)
		ju := e.snapU[sm.J*rank : (sm.J+1)*rank]
		jv := e.snapV[sm.J*rank : (sm.J+1)*rank]
		if e.cfg.Symmetric {
			// Algorithm 1: both of the observer's vectors move against
			// the peer's batch-start coordinates.
			e.cfg.SGD.UpdateRTT(c, ju, jv, x)
		} else {
			// Algorithm 2: the sender update fires here against the
			// batch-start vⱼ; the target update is routed to j's shard
			// with the batch index as the tie-break sequence.
			d := e.store.ShardOf(sm.J)
			if e.cfg.MailboxCap > 0 && len(e.out[s][d]) >= e.cfg.MailboxCap {
				continue // mailbox full: the measurement is lost
			}
			e.cfg.SGD.UpdateABWSender(c, jv, x)
			e.out[s][d] = append(e.out[s][d], abwDelivery{
				target: int32(sm.J), sender: int32(sm.I), k: idx, x: x,
			})
		}
		applied++
	}
	if applied > 0 {
		e.dirty[s] = true
	}
	return applied
}
