package engine

import (
	"math/rand"
	"sync"
	"testing"

	"dmfsgd/internal/sgd"
	"dmfsgd/internal/vec"
)

func TestStorePartition(t *testing.T) {
	s := NewStore(10, 3, 4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	seen := make(map[*sgd.Coordinates]bool)
	for i := 0; i < 10; i++ {
		if got := s.ShardOf(i); got != i%4 {
			t.Errorf("ShardOf(%d) = %d, want %d", i, got, i%4)
		}
		c := s.Coord(i)
		if len(c.U) != 3 || len(c.V) != 3 {
			t.Fatalf("node %d rank %d/%d", i, len(c.U), len(c.V))
		}
		if seen[c] {
			t.Fatalf("node %d shares a slot", i)
		}
		seen[c] = true
	}
}

func TestStoreShardClamping(t *testing.T) {
	if got := NewStore(3, 2, 16).Shards(); got != 3 {
		t.Errorf("shards clamped to %d, want 3", got)
	}
	if got := NewStore(3, 2, 0).Shards(); got != 1 {
		t.Errorf("shards defaulted to %d, want 1", got)
	}
}

// TestInitUniformMatchesSequentialDraws: the store's bulk initialization
// must consume the rng exactly like the historical per-node
// sgd.NewCoordinates loop, for every shard count.
func TestInitUniformMatchesSequentialDraws(t *testing.T) {
	const n, rank, seed = 17, 5, 99
	want := make([]*sgd.Coordinates, n)
	ref := rand.New(rand.NewSource(seed))
	for i := range want {
		want[i] = sgd.NewCoordinates(rank, ref)
	}
	for _, shards := range []int{1, 2, 8} {
		s := NewStore(n, rank, shards)
		s.InitUniform(rand.New(rand.NewSource(seed)))
		for i := 0; i < n; i++ {
			c := s.Coord(i)
			if !vec.Equal(c.U, want[i].U, 0) || !vec.Equal(c.V, want[i].V, 0) {
				t.Fatalf("shards=%d node %d differs from sequential init", shards, i)
			}
		}
	}
}

func TestRefRoundTripAndSnapshot(t *testing.T) {
	s := NewStore(6, 4, 3)
	r := s.Ref(5)
	if !r.Valid() || r.ID() != 5 {
		t.Fatal("bad ref")
	}
	if (Ref{}).Valid() {
		t.Fatal("zero ref must be invalid")
	}
	src := &sgd.Coordinates{U: []float64{1, 2, 3, 4}, V: []float64{5, 6, 7, 8}}
	r.Set(src)
	snap := r.Snapshot()
	if !vec.Equal(snap.U, src.U, 0) || !vec.Equal(snap.V, src.V, 0) {
		t.Fatal("snapshot differs from Set values")
	}
	// Snapshot is a copy, not an alias.
	snap.U[0] = 42
	if s.Coord(5).U[0] != 1 {
		t.Fatal("snapshot aliases the store")
	}
	r.Update(func(c *sgd.Coordinates) bool { c.U[1] = -9; return true })
	var got float64
	r.View(func(c *sgd.Coordinates) { got = c.U[1] })
	if got != -9 {
		t.Fatalf("update not visible: %v", got)
	}
}

func TestSnapshotFlatLayout(t *testing.T) {
	s := NewStore(5, 2, 2)
	for i := 0; i < 5; i++ {
		f := float64(i)
		s.Ref(i).Set(&sgd.Coordinates{U: []float64{f, f + 10}, V: []float64{-f, -f - 10}})
	}
	u, v := s.SnapshotFlat()
	for i := 0; i < 5; i++ {
		f := float64(i)
		if u[2*i] != f || u[2*i+1] != f+10 || v[2*i] != -f || v[2*i+1] != -f-10 {
			t.Fatalf("node %d rows misplaced: u=%v v=%v", i, u[2*i:2*i+2], v[2*i:2*i+2])
		}
	}
}

// TestRefConcurrentUpdates hammers refs from many goroutines; run under
// -race this is the shard-lock correctness test.
func TestRefConcurrentUpdates(t *testing.T) {
	s := NewStore(16, 4, 4)
	s.InitUniform(rand.New(rand.NewSource(1)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < 2000; it++ {
				r := s.Ref(rng.Intn(16))
				if it%3 == 0 {
					r.Update(func(c *sgd.Coordinates) bool {
						for k := range c.U {
							c.U[k] += 1e-6
						}
						return true
					})
				} else {
					r.View(func(c *sgd.Coordinates) { _ = c.U[0] + c.V[0] })
				}
			}
		}(g)
	}
	// Concurrent snapshots while updates fly.
	u := make([]float64, 16*4)
	v := make([]float64, 16*4)
	for it := 0; it < 200; it++ {
		s.SnapshotInto(u, v)
	}
	wg.Wait()
}
