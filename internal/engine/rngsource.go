package engine

import (
	"fmt"
	"math/rand"
)

// CountingSource wraps the standard math/rand source with a draw
// counter, which is what makes an RNG stream checkpointable: the
// position of a stream is exactly the number of values drawn from its
// source, and a fresh source with the same seed fast-forwarded by that
// count continues the stream bit-identically. Every Rand method
// (Intn's rejection loop, NormFloat64's ziggurat retries, …) bottoms
// out in Int63/Uint64, so counting here captures all consumption, no
// matter how many draws a given call happens to burn.
//
// Wrapping is value-transparent: both Int63 and Uint64 delegate to the
// same underlying generator, so rand.New(NewCountingSource(seed))
// produces the same stream as rand.New(rand.NewSource(seed)).
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws the next value, counting it.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 draws the next value, counting it.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw counter.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Draws returns the number of values drawn so far.
func (s *CountingSource) Draws() uint64 { return s.draws }

// FastForward consumes draws until the counter reaches target — the
// restore half of checkpointing: a freshly seeded source fast-forwarded
// to a saved Draws() count continues exactly where the saved stream
// stopped. Rewinding is impossible; a target below the current count
// means the checkpoint does not belong to this configuration.
func (s *CountingSource) FastForward(target uint64) error {
	if target < s.draws {
		return fmt.Errorf("engine: RNG stream at draw %d cannot rewind to %d (checkpoint from a different configuration?)", s.draws, target)
	}
	for s.draws < target {
		s.draws++
		s.src.Int63()
	}
	return nil
}
