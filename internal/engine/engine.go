package engine

import (
	"context"
	"fmt"
	"math/rand"
	goruntime "runtime"

	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

// Config parameterizes an Engine.
type Config struct {
	// SGD carries the factorization hyper-parameters (rank, η, λ, loss).
	SGD sgd.Config
	// TrainScale divides training labels before the SGD update (0 = 1).
	TrainScale float64
	// Symmetric selects Algorithm 1 (one sample updates both of the
	// measuring node's vectors); false selects the one-sided Algorithm 2
	// updates.
	Symmetric bool
	// Shards is the coordinate-store partition count P (0 = 1). Sequential
	// results are independent of P; parallel epochs speed up with it.
	Shards int
	// Workers bounds the goroutines used by parallel epochs and evaluation
	// (0 = GOMAXPROCS). More workers than shards is never useful for
	// training.
	Workers int
	// Seed derives the per-node RNG streams of the parallel scheduler. The
	// sequential master stream is the rng passed to New, which the caller
	// seeds (and typically has already used for neighbor selection).
	Seed int64
	// MailboxCap, when positive, bounds each shard-to-shard epoch mailbox
	// to that many deliveries; probes that would overflow it fail like lost
	// probes. The structural per-epoch bound is probesPerNode × shard size,
	// which is what the default (0 = unbounded) allocates lazily; a
	// positive cap trades cross-P determinism for a hard memory ceiling.
	MailboxCap int
}

// Engine executes DMFSGD training over a sharded coordinate store. It owns
// the store, the training-label matrix, the neighbor topology, and both
// execution modes (sequential Gauss-Seidel steps and parallel epochs).
type Engine struct {
	cfg       Config
	scale     float64
	store     *Store
	labels    *mat.Dense
	neighbors [][]int
	rng       *rand.Rand
	steps     int

	// Parallel-epoch state, built lazily on first RunEpoch.
	nodeRNG  []*rand.Rand
	nodeSrc  []*CountingSource // counting sources behind nodeRNG (checkpointing)
	snapU    []float64
	snapV    []float64
	snapVers []uint64          // store versions snapU/snapV were copied at
	out      [][][]abwDelivery // [src shard][dst shard] outboxes
	inbox    [][]abwDelivery   // per-dst merge scratch
	inmail   [][]abwDelivery   // per-dst inbound routed updates (cluster apply)
	counts   []int             // per-shard success counts
	dirty    []bool            // shards written this epoch (version bump at barrier)
	groups   [][]int32         // per-shard sample indices (batch apply scratch)
}

// New builds an engine over the given topology. labels is n×n; neighbors
// has one list per node. rng is the master sequential stream — the caller
// seeds it and may already have consumed draws from it (neighbor-mask
// construction); New consumes exactly 2·rank·n further draws initializing
// the store, preserving historical fixed-seed streams.
func New(labels *mat.Dense, neighbors [][]int, rng *rand.Rand, cfg Config) (*Engine, error) {
	if err := cfg.SGD.Validate(); err != nil {
		return nil, err
	}
	n := len(neighbors)
	if n == 0 {
		return nil, fmt.Errorf("engine: empty topology")
	}
	if labels.Rows() != n || labels.Cols() != n {
		return nil, fmt.Errorf("engine: labels %dx%d, topology has %d nodes",
			labels.Rows(), labels.Cols(), n)
	}
	if cfg.TrainScale == 0 {
		cfg.TrainScale = 1
	}
	if cfg.TrainScale < 0 {
		return nil, fmt.Errorf("engine: TrainScale must be positive, got %v", cfg.TrainScale)
	}
	if cfg.MailboxCap < 0 {
		return nil, fmt.Errorf("engine: MailboxCap must be non-negative, got %d", cfg.MailboxCap)
	}
	store := NewStore(n, cfg.SGD.Rank, cfg.Shards)
	store.InitUniform(rng)
	return &Engine{
		cfg:       cfg,
		scale:     cfg.TrainScale,
		store:     store,
		labels:    labels,
		neighbors: neighbors,
		rng:       rng,
	}, nil
}

// Store returns the engine's coordinate store.
func (e *Engine) Store() *Store { return e.store }

// N returns the node count.
func (e *Engine) N() int { return e.store.n }

// Steps returns the number of successful updates so far (both modes).
func (e *Engine) Steps() int { return e.steps }

// SetSteps overwrites the cumulative update counter — checkpoint
// restore only, paired with Store.RestoreFlat.
func (e *Engine) SetSteps(steps int) { e.steps = steps }

// NodeDraws returns the per-node epoch-stream draw counts, or nil when
// the parallel scheduler has never run (no per-node streams exist yet).
// Part of the checkpoint capture: restoring these counts via
// RestoreNodeDraws makes resumed epoch training continue the streams
// bit-identically.
func (e *Engine) NodeDraws() []uint64 {
	if e.nodeSrc == nil {
		return nil
	}
	out := make([]uint64, len(e.nodeSrc))
	for i, src := range e.nodeSrc {
		out[i] = src.Draws()
	}
	return out
}

// RestoreNodeDraws fast-forwards the per-node epoch streams to the
// given draw counts (len 0 = the checkpoint was taken before any epoch
// ran: nothing to do). Call before any training on a freshly built
// engine.
func (e *Engine) RestoreNodeDraws(draws []uint64) error {
	if len(draws) == 0 {
		return nil
	}
	if len(draws) != e.store.n {
		return fmt.Errorf("engine: %d node draw counts for %d nodes", len(draws), e.store.n)
	}
	e.ensureEpochState()
	for i, d := range draws {
		if err := e.nodeSrc[i].FastForward(d); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// SetLabels swaps the training-label matrix mid-run (network dynamics).
func (e *Engine) SetLabels(labels *mat.Dense) {
	if labels.Rows() != e.store.n || labels.Cols() != e.store.n {
		panic(fmt.Sprintf("engine: SetLabels %dx%d, store has %d nodes",
			labels.Rows(), labels.Cols(), e.store.n))
	}
	e.labels = labels
}

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ from the live store (exclusive contexts).
func (e *Engine) Predict(i, j int) float64 {
	return sgd.Predict(e.store.Coord(i).U, e.store.Coord(j).V)
}

// Step performs one sequential protocol exchange: the master stream picks a
// random node and one of its neighbors, and the metric-appropriate update
// rules fire. Returns false when the sampled pair has no label.
func (e *Engine) Step() bool {
	i, j := e.SampleProbe()
	return e.Apply(i, j)
}

// SampleProbe draws the next (node, neighbor) probe pair from the master
// sequential stream without applying an update — the sampling half of
// Step, exposed so an external measurement source (the ingestion layer's
// MatrixSource) can reproduce the sequential probe schedule exactly:
// draining such a source through ApplyLabel is bit-identical to running
// Step, because both consume the same draws from the same stream.
func (e *Engine) SampleProbe() (i, j int) {
	i = e.rng.Intn(e.store.n)
	j = e.neighbors[i][e.rng.Intn(len(e.neighbors[i]))]
	return i, j
}

// Apply consumes the label of pair (i, j), if present.
func (e *Engine) Apply(i, j int) bool {
	if e.labels.IsMissing(i, j) {
		return false
	}
	e.applyValue(i, j, e.labels.At(i, j)/e.scale)
	return true
}

// ApplyLabel consumes an externally supplied label for pair (i, j) — the
// trace-replay path, where labels come from the measurement stream rather
// than the matrix.
func (e *Engine) ApplyLabel(i, j int, label float64) {
	e.applyValue(i, j, label/e.scale)
}

// applyValue fires the update rules for a scaled sample, Gauss-Seidel
// style: updates land in the live store immediately. Each touched shard's
// version advances with the write (this runs in the exclusive discipline,
// so no locking is needed).
func (e *Engine) applyValue(i, j int, x float64) {
	if e.cfg.Symmetric {
		// Algorithm 1 (RTT): the sender i infers x and updates both its
		// vectors against j's.
		e.cfg.SGD.UpdateRTT(e.store.Coord(i), e.store.Coord(j).U, e.store.Coord(j).V, x)
		e.store.bump(i)
	} else {
		// Algorithm 2 (ABW): the target j infers x, updates vⱼ with the uᵢ
		// carried by the probe, and replies with (x, vⱼ); i updates uᵢ.
		// The reply carries vⱼ as it was when sent (step 3 precedes step 4),
		// i.e. the pre-update value.
		cj := e.store.Coord(j)
		vj := append([]float64(nil), cj.V...)
		e.cfg.SGD.UpdateABWTarget(cj, e.store.Coord(i).U, x)
		e.cfg.SGD.UpdateABWSender(e.store.Coord(i), vj, x)
		e.store.bump(i)
		e.store.bump(j)
	}
	e.steps++
	mSteps.Inc()
}

// Run performs total successful sequential steps (missing-data probes are
// retried and do not count).
func (e *Engine) Run(total int) {
	for done := 0; done < total; {
		if e.Step() {
			done++
		}
	}
}

// ctxCheckMask throttles context polling on hot loops: the context is
// consulted once every ctxCheckMask+1 iterations.
const ctxCheckMask = 4095

// RunCtx performs up to total successful sequential steps, polling ctx
// every few thousand probe attempts (attempts, not successes, so a sparse
// label matrix cannot stall cancellation). It returns the number of
// successful steps performed and, when interrupted, the context's error.
// The store is always left in a valid state: a cancelled run simply
// stopped after fewer measurements.
func (e *Engine) RunCtx(ctx context.Context, total int) (int, error) {
	done := 0
	for attempts := 0; done < total; attempts++ {
		if attempts&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
		if e.Step() {
			done++
		}
	}
	return done, nil
}

// workers resolves the effective worker count.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return goruntime.GOMAXPROCS(0)
}
