package engine

import (
	"math/rand"
	"testing"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/dataset"
	"dmfsgd/internal/eval"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
	"dmfsgd/internal/vec"
)

// testProblem builds a synthetic n-node topology with ±1 labels and the
// protocol's neighbor mask, plus a fresh master rng positioned exactly
// where sim.Driver would leave it (after mask construction).
func testProblem(t testing.TB, n, k int, symmetric bool, seed int64) (*mat.Dense, [][]int, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, neighbors := mat.NeighborMask(n, k, symmetric, rng)
	labels := mat.NewDense(n, n)
	lrng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if lrng.Float64() < 0.5 {
				labels.Set(i, j, 1)
			} else {
				labels.Set(i, j, -1)
			}
		}
	}
	return labels, neighbors, rng
}

func testEngine(t testing.TB, n, k, shards, workers int, symmetric bool, seed int64) *Engine {
	t.Helper()
	labels, neighbors, rng := testProblem(t, n, k, symmetric, seed)
	e, err := New(labels, neighbors, rng, Config{
		SGD:       sgd.Defaults(),
		Symmetric: symmetric,
		Shards:    shards,
		Workers:   workers,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func coordsEqual(t *testing.T, a, b *Engine, ctx string) {
	t.Helper()
	for i := 0; i < a.N(); i++ {
		ca, cb := a.Store().Coord(i), b.Store().Coord(i)
		if !vec.Equal(ca.U, cb.U, 0) || !vec.Equal(ca.V, cb.V, 0) {
			t.Fatalf("%s: node %d coordinates diverge", ctx, i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	labels, neighbors, rng := testProblem(t, 10, 3, true, 1)
	if _, err := New(labels, neighbors, rng, Config{SGD: sgd.Config{}}); err == nil {
		t.Error("invalid SGD accepted")
	}
	wrong := mat.NewDense(4, 4)
	if _, err := New(wrong, neighbors, rng, Config{SGD: sgd.Defaults()}); err == nil {
		t.Error("label dimension mismatch accepted")
	}
	if _, err := New(labels, neighbors, rng, Config{SGD: sgd.Defaults(), TrainScale: -1}); err == nil {
		t.Error("negative TrainScale accepted")
	}
	if _, err := New(labels, neighbors, rng, Config{SGD: sgd.Defaults(), MailboxCap: -1}); err == nil {
		t.Error("negative MailboxCap accepted")
	}
	if _, err := New(labels, nil, rng, Config{SGD: sgd.Defaults()}); err == nil {
		t.Error("empty topology accepted")
	}
}

// TestSequentialIdenticalAcrossShards: the sharded store is a pure layout
// change for the sequential schedule — coordinates after a fixed-seed run
// are bit-identical for every P.
func TestSequentialIdenticalAcrossShards(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		e1 := testEngine(t, 60, 8, 1, 1, symmetric, 7)
		e8 := testEngine(t, 60, 8, 8, 1, symmetric, 7)
		coordsEqual(t, e1, e8, "after init")
		e1.Run(4000)
		e8.Run(4000)
		if e1.Steps() != e8.Steps() {
			t.Fatalf("steps %d vs %d", e1.Steps(), e8.Steps())
		}
		coordsEqual(t, e1, e8, "after run")
	}
}

// TestEpochDeterminismAcrossShards is the determinism contract of the
// parallel scheduler: same seed ⇒ bit-identical coordinates whether the
// epoch runs on 1 shard or 8, with 1 worker or many.
func TestEpochDeterminismAcrossShards(t *testing.T) {
	for _, symmetric := range []bool{true, false} {
		e1 := testEngine(t, 60, 8, 1, 1, symmetric, 11)
		e8 := testEngine(t, 60, 8, 8, 4, symmetric, 11)
		// The stores are initialized from an identical rng state, so the
		// starting coordinates agree; epochs must preserve that.
		n1 := e1.RunEpochs(5, 10)
		n8 := e8.RunEpochs(5, 10)
		if n1 != n8 {
			t.Fatalf("symmetric=%v: updates %d vs %d", symmetric, n1, n8)
		}
		coordsEqual(t, e1, e8, "after epochs")
	}
}

// TestEpochCrossShardRouting verifies the mailbox path against the update
// equations by hand: two ABW nodes in different shards probe each other
// once; the sender update uses the epoch-start vⱼ, the routed target
// update the epoch-start uᵢ.
func TestEpochCrossShardRouting(t *testing.T) {
	cfg := sgd.Defaults()
	labels := mat.NewDense(2, 2)
	labels.Set(0, 1, 1)
	labels.Set(1, 0, -1)
	neighbors := [][]int{{1}, {0}}
	rng := rand.New(rand.NewSource(3))
	e, err := New(labels, neighbors, rng, Config{
		SGD: cfg, Symmetric: false, Shards: 2, Workers: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Store().ShardOf(0) == e.Store().ShardOf(1) {
		t.Fatal("nodes must land in different shards")
	}
	// Epoch-start state.
	c0 := e.Store().Coord(0).Clone()
	c1 := e.Store().Coord(1).Clone()

	if got := e.RunEpoch(1); got != 2 {
		t.Fatalf("updates = %d, want 2", got)
	}

	// Expected: probe phase fires both sender updates (eq. 12) against
	// snapshot Vs, then the drain applies both routed target updates
	// (eq. 13) against snapshot Us.
	want0, want1 := c0.Clone(), c1.Clone()
	cfg.UpdateABWSender(want0, c1.V, 1)
	cfg.UpdateABWSender(want1, c0.V, -1)
	cfg.UpdateABWTarget(want0, c1.U, -1) // node 1's probe of 0
	cfg.UpdateABWTarget(want1, c0.U, 1)  // node 0's probe of 1

	g0, g1 := e.Store().Coord(0), e.Store().Coord(1)
	if !vec.Equal(g0.U, want0.U, 0) || !vec.Equal(g0.V, want0.V, 0) {
		t.Errorf("node 0: got (%v,%v), want (%v,%v)", g0.U, g0.V, want0.U, want0.V)
	}
	if !vec.Equal(g1.U, want1.U, 0) || !vec.Equal(g1.V, want1.V, 0) {
		t.Errorf("node 1: got (%v,%v), want (%v,%v)", g1.U, g1.V, want1.U, want1.V)
	}
}

// TestEpochSkipsMissingPairs: probes of missing labels fail without
// retry and without counting.
func TestEpochSkipsMissingPairs(t *testing.T) {
	labels := mat.NewMissing(4, 4)
	neighbors := [][]int{{1}, {0}, {3}, {2}}
	rng := rand.New(rand.NewSource(5))
	e, err := New(labels, neighbors, rng, Config{SGD: sgd.Defaults(), Symmetric: true, Shards: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Store().Coord(0).Clone()
	if got := e.RunEpoch(3); got != 0 {
		t.Fatalf("updates = %d, want 0", got)
	}
	after := e.Store().Coord(0)
	if !vec.Equal(before.U, after.U, 0) {
		t.Error("missing labels moved coordinates")
	}
	if got := e.RunEpochBudget(100, 3); got != 0 {
		t.Fatalf("budget loop on unmeasurable topology returned %d", got)
	}
}

// TestMailboxCapBoundsDeliveries: a tiny cap drops overflowing ABW probes
// instead of growing the mailbox.
func TestMailboxCapBoundsDeliveries(t *testing.T) {
	labels, neighbors, rng := testProblem(t, 8, 3, false, 9)
	e, err := New(labels, neighbors, rng, Config{
		SGD: sgd.Defaults(), Symmetric: false, Shards: 2, Seed: 9, MailboxCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 nodes × 4 probes = 32 potential updates, but each of the 4
	// src→dst mailboxes holds only 1: at most 4 probes survive.
	if got := e.RunEpoch(4); got > 4 {
		t.Fatalf("updates = %d, want <= 4 with capped mailboxes", got)
	}
}

// TestEpochLearnsRTT: the parallel Jacobi schedule must reach the same
// quality bar as the sequential driver on the headline RTT task.
func TestEpochLearnsRTT(t *testing.T) {
	ds := dataset.Meridian(dataset.MeridianConfig{N: 80, Seed: 21})
	auc := epochAUC(t, ds, true, 4, 21)
	if auc < 0.85 {
		t.Errorf("epoch RTT AUC = %v, want >= 0.85", auc)
	}
}

// TestEpochLearnsABW: same bar for the asymmetric (mailbox-routed) path.
func TestEpochLearnsABW(t *testing.T) {
	ds := dataset.HPS3(dataset.HPS3Config{N: 80, Seed: 22})
	auc := epochAUC(t, ds, false, 4, 22)
	if auc < 0.80 {
		t.Errorf("epoch ABW AUC = %v, want >= 0.80", auc)
	}
}

// epochAUC trains with RunEpochBudget at the paper budget and evaluates on
// the unmeasured pairs.
func epochAUC(t *testing.T, ds *dataset.Dataset, symmetric bool, shards int, seed int64) float64 {
	t.Helper()
	const k = 10
	tau := ds.Median()
	cm := classify.Matrix(ds, tau)
	rng := rand.New(rand.NewSource(seed))
	trainMask, neighbors := mat.NeighborMask(ds.N(), k, ds.Metric.Symmetric(), rng)
	e, err := New(cm, neighbors, rng, Config{
		SGD: sgd.Defaults(), Symmetric: symmetric, Shards: shards, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunEpochBudget(20*k*ds.N(), k)

	labels, scores := EvalSet(e.Store(), EvalSpec{
		Mask:   trainMask,
		Truth:  ds.Matrix,
		Metric: ds.Metric,
		Tau:    tau,
	})
	return eval.AUC(labels, scores)
}

// TestSequentialMatchesDriverSemantics: ApplyLabel and Apply agree with
// the documented Gauss-Seidel equations (pre-update vⱼ in the ABW reply).
func TestSequentialABWApplyOrder(t *testing.T) {
	cfg := sgd.Defaults()
	labels := mat.NewDense(2, 2)
	labels.Set(0, 1, 1)
	neighbors := [][]int{{1}, {0}}
	rng := rand.New(rand.NewSource(13))
	e, err := New(labels, neighbors, rng, Config{SGD: cfg, Symmetric: false, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c0 := e.Store().Coord(0).Clone()
	c1 := e.Store().Coord(1).Clone()
	if !e.Apply(0, 1) {
		t.Fatal("apply failed")
	}
	want0, want1 := c0.Clone(), c1.Clone()
	cfg.UpdateABWTarget(want1, c0.U, 1)
	cfg.UpdateABWSender(want0, c1.V, 1) // pre-update v₁
	g0, g1 := e.Store().Coord(0), e.Store().Coord(1)
	if !vec.Equal(g1.V, want1.V, 0) || !vec.Equal(g0.U, want0.U, 0) {
		t.Error("sequential ABW apply deviates from Algorithm 2")
	}
	if e.Steps() != 1 {
		t.Errorf("steps = %d", e.Steps())
	}
}
