package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"dmfsgd/internal/mat"
	"dmfsgd/internal/vec"
)

func TestBlocksCoversEachIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1000, 4}, {4096, 1}, {50000, 8}, {50001, 7},
	} {
		hits := make([]int32, tc.n)
		Blocks(tc.n, tc.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d hit %d times", tc.n, tc.workers, i, h)
			}
		}
	}
}

// TestScorePairsParallelEquivalence: block-parallel scoring is
// bit-identical to a sequential pass — the satellite equivalence contract.
func TestScorePairsParallelEquivalence(t *testing.T) {
	const n, rank = 200, 10
	rng := rand.New(rand.NewSource(31))
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	vec.RandUniform(rng, u)
	vec.RandUniform(rng, v)
	var pairs []mat.Pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, mat.Pair{I: i, J: j})
			}
		}
	}
	seq := make([]float64, len(pairs))
	ScorePairs(u, v, rank, pairs, seq, 1)
	for _, workers := range []int{2, 4, 8} {
		par := make([]float64, len(pairs))
		ScorePairs(u, v, rank, pairs, par, workers)
		for k := range seq {
			if seq[k] != par[k] {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", workers, k, par[k], seq[k])
			}
		}
	}
}

// TestSnapshotScoresMatchPredict: snapshot-scored values equal per-pair
// live predictions on a quiescent engine.
func TestSnapshotScoresMatchPredict(t *testing.T) {
	e := testEngine(t, 50, 6, 4, 4, true, 17)
	e.Run(2000)
	var pairs []mat.Pair
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if i != j {
				pairs = append(pairs, mat.Pair{I: i, J: j})
			}
		}
	}
	u, v := e.Store().SnapshotFlat()
	scores := make([]float64, len(pairs))
	ScorePairs(u, v, e.Store().Rank(), pairs, scores, 4)
	for k, p := range pairs {
		if want := e.Predict(p.I, p.J); scores[k] != want {
			t.Fatalf("pair %v: %v != %v", p, scores[k], want)
		}
	}
}
