package engine

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/mat"
	"dmfsgd/internal/vec"
)

func TestBlocksCoversEachIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1000, 4}, {4096, 1}, {50000, 8}, {50001, 7},
	} {
		hits := make([]int32, tc.n)
		Blocks(tc.n, tc.workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d hit %d times", tc.n, tc.workers, i, h)
			}
		}
	}
}

// TestScorePairsParallelEquivalence: block-parallel scoring is
// bit-identical to a sequential pass — the satellite equivalence contract.
func TestScorePairsParallelEquivalence(t *testing.T) {
	const n, rank = 200, 10
	rng := rand.New(rand.NewSource(31))
	u := make([]float64, n*rank)
	v := make([]float64, n*rank)
	vec.RandUniform(rng, u)
	vec.RandUniform(rng, v)
	var pairs []mat.Pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				pairs = append(pairs, mat.Pair{I: i, J: j})
			}
		}
	}
	seq := make([]float64, len(pairs))
	ScorePairs(u, v, rank, pairs, seq, 1)
	for _, workers := range []int{2, 4, 8} {
		par := make([]float64, len(pairs))
		ScorePairs(u, v, rank, pairs, par, workers)
		for k := range seq {
			if seq[k] != par[k] {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", workers, k, par[k], seq[k])
			}
		}
	}
}

// evalFixture builds a mask/truth pair with a few measured entries and a
// hole in the ground truth.
func evalFixture(n int) (*mat.Mask, *mat.Dense) {
	mask := mat.NewMask(n, n)
	truth := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				truth.SetMissing(i, j)
				continue
			}
			truth.Set(i, j, float64(10+(i*j)%90))
			if (i+j)%5 == 0 {
				mask.Set(i, j)
			}
		}
	}
	truth.SetMissing(1, 2) // ground-truth hole: excluded from eval pairs
	return mask, truth
}

// TestPairCacheReuseAndInvalidation: repeated lookups share one list;
// changing the measured set rebuilds it.
func TestPairCacheReuseAndInvalidation(t *testing.T) {
	mask, truth := evalFixture(40)
	var c PairCache
	p1 := c.get(mask, truth)
	p2 := c.get(mask, truth)
	if &p1[0] != &p2[0] {
		t.Fatal("cache rebuilt the pair list for an unchanged mask")
	}
	want := buildEvalPairs(mask, truth)
	if len(p1) != len(want) {
		t.Fatalf("cached list has %d pairs, want %d", len(p1), len(want))
	}
	for k := range want {
		if p1[k] != want[k] {
			t.Fatalf("cached pair %d = %v, want %v", k, p1[k], want[k])
		}
	}
	// Growing the measured set must invalidate (the pair disappears from
	// the complement).
	target := p1[0]
	mask.Set(target.I, target.J)
	p3 := c.get(mask, truth)
	if len(p3) != len(p1)-1 {
		t.Fatalf("after mask change: %d pairs, want %d", len(p3), len(p1)-1)
	}
	for _, p := range p3 {
		if p == target {
			t.Fatal("newly measured pair still in eval list")
		}
	}
}

// TestEvalSetCacheEquivalence: EvalSet output is bit-identical with and
// without a PairCache, on both the full and the subsampled path, and
// repeated subsampled calls through one cache stay deterministic.
func TestEvalSetCacheEquivalence(t *testing.T) {
	const n = 40
	mask, truth := evalFixture(n)
	store := NewStore(n, 6, 4)
	store.InitUniform(rand.New(rand.NewSource(5)))
	var cache PairCache
	for _, maxPairs := range []int{0, 97} {
		spec := EvalSpec{
			Mask: mask, Truth: truth, Metric: dataset.RTT, Tau: 50,
			MaxPairs: maxPairs, SubsampleSeed: 123, Workers: 4,
		}
		wantL, wantS := EvalSet(store, spec)
		spec.Cache = &cache
		for round := 0; round < 2; round++ {
			gotL, gotS := EvalSet(store, spec)
			if len(gotL) != len(wantL) {
				t.Fatalf("maxPairs=%d round %d: %d pairs, want %d", maxPairs, round, len(gotL), len(wantL))
			}
			for k := range wantL {
				if gotL[k] != wantL[k] || gotS[k] != wantS[k] {
					t.Fatalf("maxPairs=%d round %d: entry %d differs", maxPairs, round, k)
				}
			}
		}
	}
}

// TestEvalSetCtxCancelled: a cancelled context aborts the sweep with the
// context error and nil output.
func TestEvalSetCtxCancelled(t *testing.T) {
	const n = 40
	mask, truth := evalFixture(n)
	store := NewStore(n, 6, 2)
	store.InitUniform(rand.New(rand.NewSource(7)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	labels, scores, err := EvalSetCtx(ctx, store, EvalSpec{
		Mask: mask, Truth: truth, Metric: dataset.RTT, Tau: 50, Workers: 4,
	})
	if err == nil || labels != nil || scores != nil {
		t.Fatalf("cancelled eval: labels=%v scores=%v err=%v", labels, scores, err)
	}
}

// TestRunEpochCtxCancelled: an already-cancelled context stops the epoch
// before any shard sweep; the store remains finite and usable.
func TestRunEpochCtxCancelled(t *testing.T) {
	e := testEngine(t, 50, 6, 4, 4, true, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nCancelled, err := e.RunEpochCtx(ctx, 8)
	if err == nil {
		t.Fatal("cancelled epoch reported no error")
	}
	if nCancelled != 0 {
		t.Fatalf("cancelled-before-start epoch applied %d updates", nCancelled)
	}
	// The engine is still usable afterwards.
	if n, err := e.RunEpochCtx(context.Background(), 8); err != nil || n == 0 {
		t.Fatalf("epoch after cancel: n=%d err=%v", n, err)
	}
	for i := 0; i < e.N(); i++ {
		c := e.Store().Coord(i)
		for _, x := range append(append([]float64(nil), c.U...), c.V...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatal("non-finite coordinates after cancel/resume")
			}
		}
	}
}

// TestSnapshotScoresMatchPredict: snapshot-scored values equal per-pair
// live predictions on a quiescent engine.
func TestSnapshotScoresMatchPredict(t *testing.T) {
	e := testEngine(t, 50, 6, 4, 4, true, 17)
	e.Run(2000)
	var pairs []mat.Pair
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if i != j {
				pairs = append(pairs, mat.Pair{I: i, J: j})
			}
		}
	}
	u, v := e.Store().SnapshotFlat()
	scores := make([]float64, len(pairs))
	ScorePairs(u, v, e.Store().Rank(), pairs, scores, 4)
	for k, p := range pairs {
		if want := e.Predict(p.I, p.J); scores[k] != want {
			t.Fatalf("pair %v: %v != %v", p, scores[k], want)
		}
	}
}
