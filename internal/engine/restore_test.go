package engine

import (
	"math/rand"
	"testing"

	"dmfsgd/internal/mat"
	"dmfsgd/internal/sgd"
)

// TestCountingSourceTransparent: wrapping must not change the stream,
// and fast-forwarding a fresh source must continue it bit-identically.
func TestCountingSourceTransparent(t *testing.T) {
	ref := rand.New(rand.NewSource(99))
	cs := NewCountingSource(99)
	counted := rand.New(cs)
	for i := 0; i < 1000; i++ {
		if a, b := ref.Int63(), counted.Int63(); a != b {
			t.Fatalf("draw %d: %d != %d", i, a, b)
		}
	}
	// Mixed-method consumption (rejection loops burn variable draws).
	for i := 0; i < 500; i++ {
		if a, b := ref.Intn(7), counted.Intn(7); a != b {
			t.Fatalf("Intn draw %d: %d != %d", i, a, b)
		}
		if a, b := ref.NormFloat64(), counted.NormFloat64(); a != b {
			t.Fatalf("NormFloat64 draw %d: %v != %v", i, a, b)
		}
	}

	mark := cs.Draws()
	want := make([]int64, 64)
	for i := range want {
		want[i] = counted.Int63()
	}

	resumed := NewCountingSource(99)
	if err := resumed.FastForward(mark); err != nil {
		t.Fatal(err)
	}
	r2 := rand.New(resumed)
	for i := range want {
		if got := r2.Int63(); got != want[i] {
			t.Fatalf("resumed draw %d: %d != %d", i, got, want[i])
		}
	}

	if err := resumed.FastForward(0); err == nil {
		t.Error("rewind accepted; want error")
	}
}

// TestStoreRestoreFlat: RestoreFlat is the exact inverse of
// SnapshotFlat + Versions, including the version vector.
func TestStoreRestoreFlat(t *testing.T) {
	src := NewStore(11, 3, 4)
	src.InitUniform(rand.New(rand.NewSource(5)))
	src.Ref(6).Update(func(c *sgd.Coordinates) bool { c.U[0] = 42; return true })
	u, v := src.SnapshotFlat()
	vers := src.Versions(nil)

	dst := NewStore(11, 3, 4)
	dst.RestoreFlat(u, v, vers)
	du, dv := dst.SnapshotFlat()
	for k := range u {
		if du[k] != u[k] || dv[k] != v[k] {
			t.Fatalf("coordinate %d drifted: %v/%v vs %v/%v", k, du[k], dv[k], u[k], v[k])
		}
	}
	if !dst.VersionsEqual(vers) {
		t.Errorf("restored versions %v, want %v", dst.Versions(nil), vers)
	}
}

// epochEngine builds a small engine with a fully observed label matrix.
func epochEngine(t *testing.T, n, shards int, seed int64) *Engine {
	t.Helper()
	labels := mat.NewDense(n, n)
	nbrs := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				labels.Set(i, j, float64((i+j)%5)-2)
				nbrs[i] = append(nbrs[i], j)
			}
		}
	}
	e, err := New(labels, nbrs, rand.New(rand.NewSource(seed+1)), Config{
		SGD:    sgd.Config{Rank: 4, LearningRate: 0.1, Lambda: 0.1, Loss: sgd.Defaults().Loss},
		Shards: shards,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEpochResumeBitIdentical: restoring flat state + steps + node draw
// counts into a fresh engine continues parallel epoch training exactly
// where the captured engine stopped.
func TestEpochResumeBitIdentical(t *testing.T) {
	const n, probes = 17, 3
	for _, shards := range []int{1, 4} {
		full := epochEngine(t, n, shards, 7)
		full.RunEpochs(6, probes)
		wantU, wantV := full.Store().SnapshotFlat()
		wantVers := full.Store().Versions(nil)

		half := epochEngine(t, n, shards, 7)
		half.RunEpochs(4, probes)
		u, v := half.Store().SnapshotFlat()
		vers := half.Store().Versions(nil)
		steps := half.Steps()
		draws := half.NodeDraws()

		resumed := epochEngine(t, n, shards, 7)
		resumed.Store().RestoreFlat(u, v, vers)
		resumed.SetSteps(steps)
		if err := resumed.RestoreNodeDraws(draws); err != nil {
			t.Fatal(err)
		}
		resumed.RunEpochs(2, probes)

		gotU, gotV := resumed.Store().SnapshotFlat()
		for k := range wantU {
			if gotU[k] != wantU[k] || gotV[k] != wantV[k] {
				t.Fatalf("shards=%d: coordinate %d drifted after resume", shards, k)
			}
		}
		if !resumed.Store().VersionsEqual(wantVers) {
			t.Errorf("shards=%d: versions %v, want %v", shards, resumed.Store().Versions(nil), wantVers)
		}
		if resumed.Steps() != full.Steps() {
			t.Errorf("shards=%d: steps %d, want %d", shards, resumed.Steps(), full.Steps())
		}
	}
}
