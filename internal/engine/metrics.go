package engine

import (
	"time"

	"dmfsgd/internal/metrics"
)

// Training-path series (DESIGN.md §12). The step counter advances with
// locally applied sender updates in every mode (sequential, epoch,
// batch, cluster-owned slice), so rate(dmf_engine_steps_total) is
// steps/sec regardless of which path is driving.
var (
	mEpochSec = metrics.Default().Histogram("dmf_engine_epoch_seconds",
		"Duration of parallel training epochs.", metrics.DurationBuckets)
	mBatchSec = metrics.Default().Histogram("dmf_engine_batch_apply_seconds",
		"Duration of the sender half of batch applies (single-trainer and cluster-owned).",
		metrics.DurationBuckets)
	mSteps = metrics.Default().Counter("dmf_engine_steps_total",
		"Successful SGD updates applied locally.")
	mLockWait = metrics.Default().Histogram("dmf_engine_shard_lock_wait_seconds",
		"Wait to acquire a shard write lock on the shared (Ref.Update) discipline.",
		metrics.LatencyBuckets)
	mSnapshotShards = metrics.Default().Counter("dmf_engine_snapshot_shards_copied_total",
		"Shards re-copied by delta snapshot refreshes (skipped quiet shards are free).")
)

// The helpers below are the package's wall-clock seam: dmfvet's noclock
// analyzer exempts this file, so every duration the training path
// observes is read here and nowhere else. The observations feed metrics
// and traces only — they never influence training state, which is what
// keeps the clock out of the determinism contract.

// startTimer reads the clock for a later observeSince/sinceDur.
func startTimer() time.Time { return time.Now() }

// observeSince records the seconds elapsed since t0 on h.
func observeSince(h *metrics.Histogram, t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// sinceDur returns the duration elapsed since t0, for trace emission.
func sinceDur(t0 time.Time) time.Duration { return time.Since(t0) }
