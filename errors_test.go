package dmfsgd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"dmfsgd/internal/cluster"
	"dmfsgd/internal/transport"
)

// TestSentinelErrorsReachCallers pins the error contract of the public
// Session surfaces: every sentinel must survive wrapping all the way to
// the caller, testable with errors.Is. A refactor that re-wraps with
// fmt.Errorf("%v") instead of "%w" breaks callers silently; this table
// catches it.
func TestSentinelErrorsReachCallers(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name    string
		want    error
		trigger func(t *testing.T) error
	}{
		{"invalid-config", ErrInvalidConfig, func(t *testing.T) error {
			_, err := NewSession(NewMeridianDataset(30, 1), WithRank(0))
			return err
		}},
		{"stopped", ErrStopped, func(t *testing.T) error {
			sess, err := NewSession(NewMeridianDataset(30, 1), WithSeed(1), WithK(8))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}
			return sess.Run(ctx, 10)
		}},
		{"wal", ErrWAL, func(t *testing.T) error {
			ds := NewMeridianDataset(30, 1)
			src, err := NewMatrixSource(ds, 8, 1)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSessionFromSource(ds, WithWAL(src, io.Discard), WithSeed(1), WithK(8))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sess.Close() })
			// Native epochs sample internally — nothing reaches the log —
			// so a WAL session refuses them.
			_, err = sess.RunEpochs(ctx, 1, 4)
			return err
		}},
		{"checkpoint", ErrCheckpoint, func(t *testing.T) error {
			_, err := ResumeSession(NewMeridianDataset(30, 1),
				bytes.NewReader([]byte("definitely not a checkpoint")), nil)
			return err
		}},
		{"evicted", cluster.ErrEvicted, func(t *testing.T) error {
			return triggerEviction(t)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.trigger(t); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// triggerEviction drives a two-trainer cluster into a failover that
// evicts a silent member, then returns what the evicted member's
// session reports through RunCluster.
func triggerEviction(t *testing.T) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	net := transport.NewNetwork(transport.NetworkConfig{})
	ids := []uint32{1, 2}
	mk := func(id uint32) (*Session, *cluster.Trainer) {
		sess, err := NewSession(NewMeridianDataset(40, 2), WithSeed(7), WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		tr, err := cluster.New(cluster.Config{
			ID:        id,
			Trainers:  ids,
			Transport: net.Attach(fmt.Sprintf("e%d", id)),
			Engine:    sess.Engine(),
			Timeout:   200 * time.Millisecond,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sess, tr
	}
	_, t1 := mk(1)
	s2, t2 := mk(2)
	t1.AddPeer(2, "e2")
	t2.AddPeer(1, "e1")
	// Trainer 2 never steps: trainer 1's round times out at the barrier,
	// fails over, and broadcasts an ownership map excluding trainer 2.
	if _, err := t1.Step(ctx, nil); !errors.Is(err, cluster.ErrRoundAborted) {
		t.Fatalf("silent-peer round: %v, want ErrRoundAborted", err)
	}
	// The evicted member discovers its fate through the public surface.
	return s2.RunCluster(ctx, t2, 10, 4)
}
