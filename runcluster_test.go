package dmfsgd

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"dmfsgd/internal/ckpt"
	"dmfsgd/internal/cluster"
	"dmfsgd/internal/transport"
)

// clusterPair builds T identically configured sessions over one
// in-memory network and joins them into a trainer cluster.
func clusterPair(t *testing.T, ids []uint32, mkds func() *Dataset, opts ...Option) ([]*Session, []*cluster.Trainer) {
	t.Helper()
	net := transport.NewNetwork(transport.NetworkConfig{})
	sessions := make([]*Session, len(ids))
	trainers := make([]*cluster.Trainer, len(ids))
	for i, id := range ids {
		sess, err := NewSession(mkds(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		tr, err := cluster.New(cluster.Config{
			ID:        id,
			Trainers:  ids,
			Transport: net.Attach(fmt.Sprintf("t%d", id)),
			Engine:    sess.Engine(),
			Timeout:   30 * time.Second,
			Logf:      t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i], trainers[i] = sess, tr
	}
	for i, tr := range trainers {
		for j, id := range ids {
			if i != j {
				tr.AddPeer(id, fmt.Sprintf("t%d", id))
			}
		}
	}
	return sessions, trainers
}

// TestRunClusterMatchesSequentialAUC is the ISSUE acceptance check: a
// two-trainer fixed-seed cluster run converges to the same AUC as the
// legacy single-process sequential run (±0.01), the two members end
// bit-identical to each other (every member serves the full coordinate
// view), and their clocks agree with zero lag at quiescence.
func TestRunClusterMatchesSequentialAUC(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	mkds := func() *Dataset { return NewHPS3Dataset(60, 5) }
	opts := []Option{WithSeed(42), WithShards(4)}

	ref, err := NewSession(mkds(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}
	refAUC, err := ref.AUC(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	sessions, trainers := clusterPair(t, []uint32{1, 2}, mkds, opts...)
	errs := make(chan error, len(trainers))
	for i := range trainers {
		go func(s *Session, tr *cluster.Trainer) {
			errs <- s.RunCluster(ctx, tr, 0, 2048)
		}(sessions[i], trainers[i])
	}
	for range trainers {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	for i, s := range sessions {
		auc, err := s.AUC(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(auc-refAUC) > 0.01 {
			t.Errorf("trainer %d: AUC %.4f vs sequential %.4f, want within 0.01", i+1, auc, refAUC)
		}
		if st := trainers[i].Status(); st.ClockLag != 0 || st.Epoch != 0 {
			t.Errorf("trainer %d status at quiescence: %+v", i+1, st)
		}
	}
	// Partition equivalence at the session level: both members hold the
	// identical full coordinate state, so either can serve every shard.
	a, b := sessions[0].store(), sessions[1].store()
	au, av := a.SnapshotFlat()
	bu, bv := b.SnapshotFlat()
	if !bytes.Equal(floatBytes(au), floatBytes(bu)) || !bytes.Equal(floatBytes(av), floatBytes(bv)) {
		t.Error("cluster members' coordinate states diverge")
	}
	if !a.VersionsEqual(b.Versions(nil)) {
		t.Error("cluster members' store versions diverge")
	}
	if sessions[0].Steps() != sessions[1].Steps() {
		t.Errorf("step counters diverge: %d vs %d", sessions[0].Steps(), sessions[1].Steps())
	}
}

// TestCheckpointRecordsIncarnation: the v2 checkpoint carries the
// session's trainer incarnation, and the restart contract (resume with
// incarnation+1) survives a write/read round trip.
func TestCheckpointRecordsIncarnation(t *testing.T) {
	ds := NewMeridianDataset(30, 3)
	sess, err := NewSession(ds, WithSeed(9), WithK(8), WithIncarnation(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Incarnation() != 4 {
		t.Fatalf("Incarnation() = %d", sess.Incarnation())
	}
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	c, err := ckpt.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if c.Incarnation != 4 {
		t.Fatalf("checkpoint incarnation %d, want 4", c.Incarnation)
	}
	// The restarted process comes back one past the persisted value and
	// records that in its own checkpoints.
	next, err := ResumeSession(ds, bytes.NewReader(data), nil, WithIncarnation(c.Incarnation+1))
	if err != nil {
		t.Fatal(err)
	}
	defer next.Close()
	var buf2 bytes.Buffer
	if err := next.Checkpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	c2, err := ckpt.Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Incarnation != 5 {
		t.Fatalf("resumed checkpoint incarnation %d, want 5", c2.Incarnation)
	}
}

// floatBytes views a float slice as raw bytes for exact comparison.
func floatBytes(fs []float64) []byte {
	var buf bytes.Buffer
	for _, f := range fs {
		fmt.Fprintf(&buf, "%x;", math.Float64bits(f))
	}
	return buf.Bytes()
}
