package dmfsgd

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// TestSnapshotBitIdenticalAtQuiescence: with no training in flight, a
// snapshot's predictions must equal the live session's bit for bit — the
// acceptance criterion for serving from frozen coordinates.
func TestSnapshotBitIdenticalAtQuiescence(t *testing.T) {
	ds := NewMeridianDataset(60, 21)
	sess, err := NewSession(ds, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	if snap.N() != ds.N() || snap.Dim() != 10 {
		t.Fatalf("snapshot shape %dx%d", snap.N(), snap.Dim())
	}
	if snap.Steps() != sess.Steps() {
		t.Errorf("snapshot steps %d != session %d", snap.Steps(), sess.Steps())
	}
	var pairs []PathPair
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.N(); j++ {
			if i != j {
				pairs = append(pairs, PathPair{I: i, J: j})
			}
		}
	}
	scores := snap.PredictBatch(pairs, nil)
	for k, p := range pairs {
		live := sess.Predict(p.I, p.J)
		if scores[k] != live {
			t.Fatalf("PredictBatch(%d,%d) = %v, live = %v", p.I, p.J, scores[k], live)
		}
		if one := snap.Predict(p.I, p.J); one != scores[k] {
			t.Fatalf("Predict(%d,%d) = %v, batch = %v", p.I, p.J, one, scores[k])
		}
		if snap.Classify(p.I, p.J) != sess.Classify(p.I, p.J) {
			t.Fatalf("Classify(%d,%d) mismatch", p.I, p.J)
		}
	}
	// Caller-owned buffer path: no reallocation, same values.
	buf := make([]float64, len(pairs))
	if got := snap.PredictBatch(pairs, buf); &got[0] != &buf[0] {
		t.Error("PredictBatch reallocated the caller's buffer")
	}
	for k := range buf {
		if buf[k] != scores[k] {
			t.Fatal("buffered batch differs")
		}
	}
}

// TestSnapshotImmutable: training after materialization must not change
// an existing snapshot.
func TestSnapshotImmutable(t *testing.T) {
	ds := NewMeridianDataset(50, 22)
	sess, err := NewSession(ds, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	before := snap.Predict(1, 2)
	if err := sess.Run(context.Background(), 20000); err != nil {
		t.Fatal(err)
	}
	if snap.Predict(1, 2) != before {
		t.Error("snapshot changed after further training")
	}
	if snap.Predict(1, 2) == sess.Predict(1, 2) {
		t.Log("note: live prediction unchanged by 20k updates (unlikely but not impossible)")
	}
}

func TestSnapshotRank(t *testing.T) {
	ds := NewMeridianDataset(80, 23)
	sess, err := NewSession(ds, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	snap := sess.Snapshot()
	candidates := []int{5, 17, 31, 42, 60, 79}
	ranked := snap.Rank(3, candidates)
	if len(ranked) != len(candidates) {
		t.Fatalf("ranked %d of %d candidates", len(ranked), len(candidates))
	}
	seen := map[int]bool{}
	for _, j := range ranked {
		seen[j] = true
	}
	if len(seen) != len(candidates) {
		t.Fatal("Rank dropped or duplicated candidates")
	}
	for k := 1; k < len(ranked); k++ {
		a, b := snap.Predict(3, ranked[k-1]), snap.Predict(3, ranked[k])
		if a < b {
			t.Fatalf("Rank order violated at %d: %v < %v", k, a, b)
		}
	}
	// candidates must not be reordered in place.
	if candidates[0] != 5 || candidates[5] != 79 {
		t.Error("Rank mutated the candidates slice")
	}
}

// TestSnapshotRankTies: equal scores order by ascending node id, so the
// ranking is deterministic.
func TestSnapshotRankTies(t *testing.T) {
	row := []float64{1, 0}
	u := [][]float64{row, row, row, row}
	v := [][]float64{row, row, row, row}
	snap, err := NewSnapshot(RTT, 50, u, v)
	if err != nil {
		t.Fatal(err)
	}
	ranked := snap.Rank(0, []int{3, 1, 2})
	if ranked[0] != 1 || ranked[1] != 2 || ranked[2] != 3 {
		t.Errorf("tie order = %v, want [1 2 3]", ranked)
	}
}

func TestNewSnapshotValidation(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	if _, err := NewSnapshot(RTT, 50, nil, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := NewSnapshot(RTT, 50, good, [][]float64{{1, 2}}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("length mismatch: err = %v", err)
	}
	if _, err := NewSnapshot(RTT, 50, good, [][]float64{{1, 2}, {3}}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("ragged rows: err = %v", err)
	}
	bad := [][]float64{{1, 2}, {math.NaN(), 4}}
	if _, err := NewSnapshot(RTT, 50, good, bad); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("non-finite: err = %v", err)
	}
}

// TestNewSnapshotMatchesNodes: a snapshot assembled from embeddable Node
// coordinates predicts exactly what the nodes themselves predict.
func TestNewSnapshotMatchesNodes(t *testing.T) {
	const n = 8
	nodes := make([]*Node, n)
	us := make([][]float64, n)
	vs := make([][]float64, n)
	for i := range nodes {
		node, err := NewNode(DefaultConfig(), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		us[i], vs[i] = node.U(), node.V()
	}
	snap, err := NewSnapshot(RTT, 100, us, vs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tau() != 100 || snap.Metric() != RTT || snap.Steps() != 0 {
		t.Errorf("metadata: tau=%v metric=%v steps=%d", snap.Tau(), snap.Metric(), snap.Steps())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := snap.Predict(i, j), nodes[i].Score(nodes[j].V()); got != want {
				t.Fatalf("Predict(%d,%d) = %v, node says %v", i, j, got, want)
			}
		}
	}
}

// TestSnapshotConcurrentReadersWhileTraining is the zero-lock serving
// race test: a live swarm mutates the store while one goroutine keeps
// materializing fresh snapshots and many others hammer PredictBatch and
// Rank on whatever snapshot they last saw. Run with -race to verify the
// "no synchronization needed after materialization" contract.
func TestSnapshotConcurrentReadersWhileTraining(t *testing.T) {
	ds := NewMeridianDataset(60, 24)
	sess, err := NewSession(ds,
		WithLive(),
		WithProbeInterval(100*time.Microsecond),
		WithSeed(24),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	stop := make(chan struct{})
	var latest sync.Map // int -> *Snapshot, refreshed by the swapper
	latest.Store(0, sess.Snapshot())

	var wg sync.WaitGroup
	// Snapshot swapper: keeps materializing while trainers mutate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			latest.Store(0, sess.Snapshot())
		}
	}()
	// Readers: batch predictions and rankings, zero locks.
	pairs := make([]PathPair, 256)
	for k := range pairs {
		pairs[k] = PathPair{I: k % ds.N(), J: (k*7 + 1) % ds.N()}
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scores := make([]float64, len(pairs))
			candidates := []int{1, 2, 3, 4, 5, 6, 7, 8}
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, _ := latest.Load(0)
				snap := v.(*Snapshot)
				snap.PredictBatch(pairs, scores)
				_ = snap.Rank(0, candidates)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
