package dmfsgd

import (
	"context"
	"errors"
	"fmt"
	"io"

	"dmfsgd/internal/cluster"
	"dmfsgd/internal/engine"
	"dmfsgd/internal/sim"
)

// Engine exposes the deterministic session's training engine for
// trainer-cluster wiring (cluster.Config.Engine). It returns nil on a
// live session — a swarm's nodes train themselves and cannot join a
// trainer cluster. Code that only trains and serves should not touch
// the engine directly; this accessor exists so a process can place the
// session's coordinate store under a cluster.Trainer's ownership
// protocol.
func (s *Session) Engine() *engine.Engine {
	if s.drv == nil {
		return nil
	}
	return s.drv.Engine()
}

// Incarnation returns the trainer incarnation the session was built
// with (WithIncarnation; 0 when unset). Checkpoints record it, and a
// resumed process must come back with a strictly larger value.
func (s *Session) Incarnation() uint32 { return s.set.incarnation }

// RunCluster drains the session's measurement source through a trainer
// cluster instead of the local sequential path: each fixed-size batch
// of usable measurements becomes one lockstep round of tr, which
// applies the samples owned here, routes cross-shard target updates to
// their owning trainers, and mirrors the other trainers' shards back
// into this session's store. Every cluster member must run an
// identically configured session (same dataset, seed and options) and
// call RunCluster with the same budget and batch size — the identical
// measurement streams are what keep the members' batches, and therefore
// their coordinate states, in lockstep. A roster-of-one cluster is
// bit-identical to Run's epoch-batch application of the same stream.
//
// total is the successful-update budget (0 = the paper default), batch
// the round size in measurements (0 = 8192). Aborted rounds — a peer
// failed mid-round and ownership was reassigned — lose their batch like
// a lossy measurement round and do not count against the budget;
// training continues under the new ownership map. RunCluster returns
// nil when the budget is met or a finite source is exhausted,
// cluster.ErrEvicted when the cluster has declared this trainer dead,
// or the first hard error.
//
// With a WAL attached, each completed round commits as a batch barrier.
// Replaying such a log solo reproduces the full cluster-wide state, not
// just this member's owned shards — partition equivalence makes the
// solo replay and the cluster run the same trajectory.
func (s *Session) RunCluster(ctx context.Context, tr *cluster.Trainer, total, batch int) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if tr == nil {
		return fmt.Errorf("%w: nil cluster trainer", ErrInvalidConfig)
	}
	if s.swarm != nil {
		return fmt.Errorf("%w: a live swarm's nodes train themselves; cluster training drives deterministic sessions", ErrLiveSession)
	}
	if total <= 0 {
		total = sim.DefaultBudget(s.ds.N(), s.k)
	}
	if batch <= 0 {
		batch = runChunk
	}
	buf := make([]Measurement, batch)
	samples := make([]engine.Sample, 0, batch)
	for done := 0; done < total; {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := min(batch, total-done)
		k, err := s.src.NextBatch(ctx, buf[:want])
		samples = samples[:0]
		for _, m := range buf[:k] {
			if !s.usable(m) || !s.drv.IsNeighbor(m.I, m.J) {
				continue
			}
			samples = append(samples, engine.Sample{
				I: m.I, J: m.J,
				Label: ClassOf(s.ds.Metric, m.Value, s.tau).Value(),
			})
		}
		applied, serr := tr.Step(ctx, samples)
		switch {
		case serr == nil:
			done += applied
			if cerr := s.commitWAL(true); cerr != nil {
				return cerr
			}
		case errors.Is(serr, cluster.ErrRoundAborted):
			// The round's batch is lost to the failover, like a lossy
			// measurement round; mark it skipped so WAL replay agrees.
			s.skipWAL()
		default:
			s.skipWAL()
			return serr
		}
		s.publish(Progress{Steps: s.drv.Steps(), Target: total})
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}
