package dmfsgd

import "errors"

// Sentinel errors returned by the public API. Test for them with
// errors.Is: every error a Session, Snapshot constructor or option
// returns wraps exactly one of these (or a context error when a Run was
// cancelled — errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as usual).
var (
	// ErrInvalidConfig marks a rejected configuration: an out-of-range
	// option value, an impossible topology (k ≥ n), malformed snapshot
	// coordinates, and so on. The wrapped message names the offending
	// parameter.
	ErrInvalidConfig = errors.New("dmfsgd: invalid configuration")

	// ErrStopped is returned by operations on a Session that has been
	// closed with Close.
	ErrStopped = errors.New("dmfsgd: session closed")

	// ErrDynamicTrace is returned by epoch training on a session whose
	// measurement source has no epoch structure: an endless sampler
	// behind scenario decorators, a live capture, or any custom Source
	// that is neither a finite time-ordered replay nor a bare matrix
	// sampler. Epoch training on such a stream would have to invent a
	// grouping the source does not define, which is never what the
	// caller meant — use Session.Run, which drains the stream in order.
	// (Dynamic-trace datasets themselves no longer hit this: their
	// traces replay in per-epoch measurement groups; the historical name
	// is kept for errors.Is compatibility.)
	ErrDynamicTrace = errors.New("dmfsgd: measurement source has no epoch structure")

	// ErrLiveSession is returned by operations that require the
	// deterministic driver (epoch training) when the session was built
	// with WithLive: live swarms train continuously on their own
	// schedule.
	ErrLiveSession = errors.New("dmfsgd: not supported on a live session")

	// ErrCheckpoint is returned by ResumeSession when a checkpoint
	// cannot restore the session being built: a malformed or truncated
	// file, a future format version, a geometry or configuration that
	// contradicts the dataset or the explicitly passed options, or a
	// source chain whose shape differs from the one the checkpoint was
	// taken with. The wrapped message (and, for decode failures, the
	// wrapped ckpt sentinel) names the cause.
	ErrCheckpoint = errors.New("dmfsgd: checkpoint cannot restore this session")

	// ErrWAL is returned when the measurement write-ahead log cannot be
	// written (training refuses to continue without durability once a
	// WAL is attached) or when a replayed WAL contradicts the restored
	// state (a step counter that does not line up means the log belongs
	// to a different run).
	ErrWAL = errors.New("dmfsgd: measurement WAL failure")
)
