package dmfsgd

import "errors"

// Sentinel errors returned by the public API. Test for them with
// errors.Is: every error a Session, Snapshot constructor or option
// returns wraps exactly one of these (or a context error when a Run was
// cancelled — errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work as usual).
var (
	// ErrInvalidConfig marks a rejected configuration: an out-of-range
	// option value, an impossible topology (k ≥ n), malformed snapshot
	// coordinates, and so on. The wrapped message names the offending
	// parameter.
	ErrInvalidConfig = errors.New("dmfsgd: invalid configuration")

	// ErrStopped is returned by operations on a Session that has been
	// closed with Close.
	ErrStopped = errors.New("dmfsgd: session closed")

	// ErrDynamicTrace is returned by epoch training on a dataset that
	// carries a dynamic measurement trace (Harvard): epochs would sample
	// the matrix in random order and silently ignore the trace, which is
	// never what the caller meant. Use Session.Run, which replays the
	// trace in time order.
	ErrDynamicTrace = errors.New("dmfsgd: dataset has a dynamic measurement trace")

	// ErrLiveSession is returned by operations that require the
	// deterministic driver (epoch training) when the session was built
	// with WithLive: live swarms train continuously on their own
	// schedule.
	ErrLiveSession = errors.New("dmfsgd: not supported on a live session")
)
