package dmfsgd

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/vec"
)

// PathPair identifies a directed node pair: the path I → J.
type PathPair struct {
	I, J int
}

// Snapshot is an immutable copy of every node's coordinates, materialized
// from the session's shard store in one pass (Session.Snapshot) or
// assembled from application-gathered Node coordinates (NewSnapshot).
// After materialization it involves no locks, no atomics and no shared
// mutable state, so any number of goroutines may serve Predict,
// PredictBatch, Rank and Classify from one Snapshot concurrently at
// memory bandwidth — this is the serving surface for heavy prediction
// traffic. A snapshot costs 2·n·r float64s (~160KB at Meridian 2500,
// rank 10).
//
// Training that continues after materialization does not affect a
// snapshot; take a fresh one (and atomically swap a shared pointer, as
// cmd/dmfserve does) to publish newer coordinates.
type Snapshot struct {
	n, rank int
	u, v    []float64 // flat row-major: node i's rows at [i*rank, (i+1)*rank)
	tau     float64
	metric  Metric
	steps   int

	// Block-backed snapshots (NewSnapshotBlocks — the replicated serving
	// path) hold one contiguous block per store shard instead of flat
	// arrays: node i's rows live in block i mod P at local row i div P.
	// bu/bv are nil for flat snapshots; when set, u and v are nil.
	bu, bv [][]float64

	// Store-materialized snapshots carry the shard version vector they
	// were copied at, which is what lets Session.Snapshot return the same
	// snapshot at quiescence and lets the replication tier ship only the
	// shards that advanced. Assembled snapshots (NewSnapshot,
	// NewSnapshotFlat) have no store and leave these zero; block-backed
	// snapshots carry the replicated state's geometry and versions.
	shards int
	vers   []uint64
}

// NewSnapshot assembles a snapshot from per-node coordinate rows — the
// serving path for applications that run embeddable Nodes and gather
// (U, V) pairs themselves. u[i] and v[i] are node i's out- and
// in-coordinates (Node.U, Node.V); all rows must share one length r ≥ 1
// and hold finite values. tau and metric describe the classification
// threshold the coordinates were trained against. The rows are copied.
func NewSnapshot(metric Metric, tau float64, u, v [][]float64) (*Snapshot, error) {
	n := len(u)
	if n == 0 || len(v) != n {
		return nil, fmt.Errorf("%w: need equal non-empty U and V row sets, got %d and %d",
			ErrInvalidConfig, len(u), len(v))
	}
	rank := len(u[0])
	if rank == 0 {
		return nil, fmt.Errorf("%w: empty coordinate rows", ErrInvalidConfig)
	}
	sn := &Snapshot{
		n:      n,
		rank:   rank,
		u:      make([]float64, n*rank),
		v:      make([]float64, n*rank),
		tau:    tau,
		metric: metric,
	}
	for i := 0; i < n; i++ {
		if len(u[i]) != rank || len(v[i]) != rank {
			return nil, fmt.Errorf("%w: node %d has rows of length %d/%d, want %d",
				ErrInvalidConfig, i, len(u[i]), len(v[i]), rank)
		}
		for r := 0; r < rank; r++ {
			if !finite(u[i][r]) || !finite(v[i][r]) {
				return nil, fmt.Errorf("%w: node %d has non-finite coordinates", ErrInvalidConfig, i)
			}
		}
		copy(sn.u[i*rank:(i+1)*rank], u[i])
		copy(sn.v[i*rank:(i+1)*rank], v[i])
	}
	return sn, nil
}

// NewSnapshotFlat assembles a snapshot from flat row-major coordinate
// arrays (node i's rows at [i·rank, (i+1)·rank)) — the serving path for
// replicated coordinate state, whose deltas already arrive flat
// (internal/replica, cmd/dmfserve -peer). u and v must have equal length,
// a multiple of rank, and hold finite values. steps stamps the freshness
// counter. The arrays are NOT copied: the snapshot takes ownership, and
// the caller must not modify them afterwards.
func NewSnapshotFlat(metric Metric, tau float64, steps, rank int, u, v []float64) (*Snapshot, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("%w: rank %d, want ≥ 1", ErrInvalidConfig, rank)
	}
	if len(u) == 0 || len(u) != len(v) || len(u)%rank != 0 {
		return nil, fmt.Errorf("%w: flat arrays of %d/%d values, want equal non-empty multiples of rank %d",
			ErrInvalidConfig, len(u), len(v), rank)
	}
	for k := range u {
		if !finite(u[k]) || !finite(v[k]) {
			return nil, fmt.Errorf("%w: non-finite coordinate at row %d", ErrInvalidConfig, k/rank)
		}
	}
	return &Snapshot{
		n:      len(u) / rank,
		rank:   rank,
		u:      u,
		v:      v,
		tau:    tau,
		metric: metric,
		steps:  steps,
	}, nil
}

// NewSnapshotBlocks assembles a snapshot directly over per-shard
// coordinate blocks — the allocation-free serving path for replicated
// state (internal/replica, cmd/dmfserve -peer), whose gossip deltas
// arrive as immutable per-shard blocks. Block p holds the rows of nodes
// p, p+shards, p+2·shards, … ascending (the store's partition), rank
// values per row; u and v must each carry exactly `shards` blocks of the
// right length. vers, when non-nil, stamps the per-shard version vector
// the state was captured at (copied).
//
// The blocks are NOT copied: the snapshot aliases them, and the caller
// must treat them as immutable afterwards — exactly the contract
// replica.State already maintains, which is what lets a follower publish
// a fresh snapshot per applied delta without flattening the full 2·n·r
// state.
//
// prev, when non-nil and of identical geometry, skips re-validating
// blocks shared with it by identity: a block whose backing array already
// passed a previous call's finiteness scan cannot have changed. Passing
// the previously published snapshot makes the per-delta publish cost
// proportional to the shards that advanced, not to n.
func NewSnapshotBlocks(metric Metric, tau float64, steps, rank, n, shards int, u, v [][]float64, vers []uint64, prev *Snapshot) (*Snapshot, error) {
	if rank <= 0 || n <= 0 || shards <= 0 || shards > n {
		return nil, fmt.Errorf("%w: block snapshot geometry n=%d rank=%d shards=%d",
			ErrInvalidConfig, n, rank, shards)
	}
	if len(u) != shards || len(v) != shards {
		return nil, fmt.Errorf("%w: %d/%d coordinate blocks, want %d",
			ErrInvalidConfig, len(u), len(v), shards)
	}
	if vers != nil && len(vers) != shards {
		return nil, fmt.Errorf("%w: version vector length %d, want %d",
			ErrInvalidConfig, len(vers), shards)
	}
	if prev != nil && (prev.bu == nil || prev.n != n || prev.rank != rank || prev.shards != shards) {
		prev = nil // not block-backed or geometry changed: validate everything
	}
	for p := 0; p < shards; p++ {
		rows := (n - p + shards - 1) / shards
		if len(u[p]) != rows*rank || len(v[p]) != rows*rank {
			return nil, fmt.Errorf("%w: shard %d blocks of %d/%d values, want %d",
				ErrInvalidConfig, p, len(u[p]), len(v[p]), rows*rank)
		}
		if prev != nil && rows > 0 && &u[p][0] == &prev.bu[p][0] && &v[p][0] == &prev.bv[p][0] {
			continue // shared with an already-validated snapshot
		}
		for k := range u[p] {
			if !finite(u[p][k]) || !finite(v[p][k]) {
				return nil, fmt.Errorf("%w: shard %d has non-finite coordinates", ErrInvalidConfig, p)
			}
		}
	}
	sn := &Snapshot{
		n:      n,
		rank:   rank,
		bu:     u,
		bv:     v,
		tau:    tau,
		metric: metric,
		steps:  steps,
		shards: shards,
	}
	if vers != nil {
		sn.vers = append([]uint64(nil), vers...)
	}
	return sn, nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// N returns the node count.
func (sn *Snapshot) N() int { return sn.n }

// Dim returns r, the coordinate dimensionality.
func (sn *Snapshot) Dim() int { return sn.rank }

// Tau returns the classification threshold the coordinates were trained
// against.
func (sn *Snapshot) Tau() float64 { return sn.tau }

// Metric returns the measured quantity.
func (sn *Snapshot) Metric() Metric { return sn.metric }

// Steps returns the session's cumulative update count at materialization
// (0 for snapshots assembled with NewSnapshot) — a freshness stamp for
// serving loops that swap snapshots.
func (sn *Snapshot) Steps() int { return sn.steps }

// StoreShards returns the shard count P of the store this snapshot was
// materialized from (or, for block-backed snapshots, of the replicated
// state's partition), or 0 for assembled snapshots (NewSnapshot,
// NewSnapshotFlat), which have no store.
func (sn *Snapshot) StoreShards() int { return sn.shards }

// Versions returns a copy of the per-shard store version vector this
// snapshot was materialized at (nil for assembled snapshots). Together
// with Flat it is the input the replication tier captures its versioned
// state from.
func (sn *Snapshot) Versions() []uint64 {
	if sn.vers == nil {
		return nil
	}
	return append([]uint64(nil), sn.vers...)
}

// Flat returns copies of the flat row-major coordinate arrays (node i's
// rows at [i·rank, (i+1)·rank)) — the counterpart of NewSnapshotFlat for
// callers that replicate or persist coordinate state. Block-backed
// snapshots are flattened row by row.
func (sn *Snapshot) Flat() (u, v []float64) {
	if sn.bu == nil {
		return append([]float64(nil), sn.u...), append([]float64(nil), sn.v...)
	}
	r := sn.rank
	u = make([]float64, sn.n*r)
	v = make([]float64, sn.n*r)
	for i := 0; i < sn.n; i++ {
		copy(u[i*r:(i+1)*r], sn.rowU(i))
		copy(v[i*r:(i+1)*r], sn.rowV(i))
	}
	return u, v
}

// rowU returns node i's out-coordinates (a view; callers must not modify).
func (sn *Snapshot) rowU(i int) []float64 {
	r := sn.rank
	if sn.bu == nil {
		return sn.u[i*r : i*r+r]
	}
	b := sn.bu[i%sn.shards]
	li := i / sn.shards
	return b[li*r : li*r+r]
}

// rowV returns node i's in-coordinates (a view; callers must not modify).
func (sn *Snapshot) rowV(i int) []float64 {
	r := sn.rank
	if sn.bv == nil {
		return sn.v[i*r : i*r+r]
	}
	b := sn.bv[i%sn.shards]
	li := i / sn.shards
	return b[li*r : li*r+r]
}

func (sn *Snapshot) check(i, j int) {
	if uint(i) >= uint(sn.n) || uint(j) >= uint(sn.n) {
		panic(fmt.Sprintf("dmfsgd: snapshot pair (%d,%d) out of range [0,%d)", i, j, sn.n))
	}
}

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ, the estimate of the path i → j. Larger
// means more likely good. Bit-identical to Session.Predict at the moment
// of materialization.
func (sn *Snapshot) Predict(i, j int) float64 {
	sn.check(i, j)
	return vec.Dot(sn.rowU(i), sn.rowV(j))
}

// Classify returns the predicted class of the path i → j: the sign of
// Predict.
func (sn *Snapshot) Classify(i, j int) Class {
	return classify.FromValue(sn.Predict(i, j))
}

// PredictBatch fills scores[k] with the prediction for pairs[k]. scores
// may be nil (a new slice is allocated) or a caller-owned buffer of
// len(pairs) for allocation-free serving loops; it is returned either
// way. The batch is scored on the calling goroutine with zero
// synchronization — parallelism comes from calling PredictBatch on many
// goroutines, which scale linearly until memory bandwidth.
func (sn *Snapshot) PredictBatch(pairs []PathPair, scores []float64) []float64 {
	if scores == nil {
		scores = make([]float64, len(pairs))
	}
	if len(scores) != len(pairs) {
		panic(fmt.Sprintf("dmfsgd: PredictBatch scores length %d, want %d", len(scores), len(pairs)))
	}
	if sn.bu == nil {
		// Flat fast path: direct row arithmetic, no per-row shard lookup.
		r := sn.rank
		for k, p := range pairs {
			sn.check(p.I, p.J)
			scores[k] = vec.Dot(sn.u[p.I*r:(p.I+1)*r], sn.v[p.J*r:(p.J+1)*r])
		}
		return scores
	}
	for k, p := range pairs {
		sn.check(p.I, p.J)
		scores[k] = vec.Dot(sn.rowU(p.I), sn.rowV(p.J))
	}
	return scores
}

// rankEntry keys one candidate for sorting: its node id and score.
type rankEntry struct {
	j int
	x float64
}

// rankScratch is the reusable keyed slice behind Rank/RankInto; pooled so
// steady-state ranking performs no allocations.
type rankScratch struct{ entries []rankEntry }

var rankPool = sync.Pool{New: func() any { return new(rankScratch) }}

// Rank orders candidate peers of node i from most to least likely good —
// the §6.4 peer-selection primitive ("rank candidates by x̂ and pick the
// best"). It returns a new slice sorted by descending predicted score,
// ties broken by ascending node id so the order is deterministic.
// candidates is not modified.
func (sn *Snapshot) Rank(i int, candidates []int) []int {
	return sn.RankInto(i, candidates, make([]int, len(candidates)))
}

// RankInto is Rank with a caller-owned output buffer: out must have
// len(candidates) and receives the ranked node ids (it is also returned).
// Scoring and sorting use a pooled keyed scratch slice, so steady-state
// serving loops rank without allocating. candidates and out may alias.
//
//dmf:zeroalloc
func (sn *Snapshot) RankInto(i int, candidates, out []int) []int {
	sn.check(i, i)
	if len(out) != len(candidates) {
		//dmf:allow zeroalloc panic path: the caller violated the API contract, allocation cost is moot
		panic(fmt.Sprintf("dmfsgd: RankInto out length %d, want %d", len(out), len(candidates)))
	}
	sc := rankPool.Get().(*rankScratch)
	entries := sc.entries[:0]
	if cap(entries) < len(candidates) {
		entries = make([]rankEntry, 0, len(candidates))
	}
	ui := sn.rowU(i)
	for _, j := range candidates {
		sn.check(i, j)
		entries = append(entries, rankEntry{j: j, x: vec.Dot(ui, sn.rowV(j))})
	}
	slices.SortFunc(entries, func(a, b rankEntry) int {
		if a.x != b.x {
			if a.x > b.x {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.j, b.j)
	})
	for k := range entries {
		out[k] = entries[k].j
	}
	sc.entries = entries
	rankPool.Put(sc)
	return out
}
