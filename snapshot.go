package dmfsgd

import (
	"fmt"
	"math"
	"sort"

	"dmfsgd/internal/classify"
	"dmfsgd/internal/vec"
)

// PathPair identifies a directed node pair: the path I → J.
type PathPair struct {
	I, J int
}

// Snapshot is an immutable copy of every node's coordinates, materialized
// from the session's shard store in one pass (Session.Snapshot) or
// assembled from application-gathered Node coordinates (NewSnapshot).
// After materialization it involves no locks, no atomics and no shared
// mutable state, so any number of goroutines may serve Predict,
// PredictBatch, Rank and Classify from one Snapshot concurrently at
// memory bandwidth — this is the serving surface for heavy prediction
// traffic. A snapshot costs 2·n·r float64s (~160KB at Meridian 2500,
// rank 10).
//
// Training that continues after materialization does not affect a
// snapshot; take a fresh one (and atomically swap a shared pointer, as
// cmd/dmfserve does) to publish newer coordinates.
type Snapshot struct {
	n, rank int
	u, v    []float64 // flat row-major: node i's rows at [i*rank, (i+1)*rank)
	tau     float64
	metric  Metric
	steps   int

	// Store-materialized snapshots carry the shard version vector they
	// were copied at, which is what lets Session.Snapshot return the same
	// snapshot at quiescence and lets the replication tier ship only the
	// shards that advanced. Assembled snapshots (NewSnapshot,
	// NewSnapshotFlat) have no store and leave these zero.
	shards int
	vers   []uint64
}

// NewSnapshot assembles a snapshot from per-node coordinate rows — the
// serving path for applications that run embeddable Nodes and gather
// (U, V) pairs themselves. u[i] and v[i] are node i's out- and
// in-coordinates (Node.U, Node.V); all rows must share one length r ≥ 1
// and hold finite values. tau and metric describe the classification
// threshold the coordinates were trained against. The rows are copied.
func NewSnapshot(metric Metric, tau float64, u, v [][]float64) (*Snapshot, error) {
	n := len(u)
	if n == 0 || len(v) != n {
		return nil, fmt.Errorf("%w: need equal non-empty U and V row sets, got %d and %d",
			ErrInvalidConfig, len(u), len(v))
	}
	rank := len(u[0])
	if rank == 0 {
		return nil, fmt.Errorf("%w: empty coordinate rows", ErrInvalidConfig)
	}
	sn := &Snapshot{
		n:      n,
		rank:   rank,
		u:      make([]float64, n*rank),
		v:      make([]float64, n*rank),
		tau:    tau,
		metric: metric,
	}
	for i := 0; i < n; i++ {
		if len(u[i]) != rank || len(v[i]) != rank {
			return nil, fmt.Errorf("%w: node %d has rows of length %d/%d, want %d",
				ErrInvalidConfig, i, len(u[i]), len(v[i]), rank)
		}
		for r := 0; r < rank; r++ {
			if !finite(u[i][r]) || !finite(v[i][r]) {
				return nil, fmt.Errorf("%w: node %d has non-finite coordinates", ErrInvalidConfig, i)
			}
		}
		copy(sn.u[i*rank:(i+1)*rank], u[i])
		copy(sn.v[i*rank:(i+1)*rank], v[i])
	}
	return sn, nil
}

// NewSnapshotFlat assembles a snapshot from flat row-major coordinate
// arrays (node i's rows at [i·rank, (i+1)·rank)) — the serving path for
// replicated coordinate state, whose deltas already arrive flat
// (internal/replica, cmd/dmfserve -peer). u and v must have equal length,
// a multiple of rank, and hold finite values. steps stamps the freshness
// counter. The arrays are NOT copied: the snapshot takes ownership, and
// the caller must not modify them afterwards.
func NewSnapshotFlat(metric Metric, tau float64, steps, rank int, u, v []float64) (*Snapshot, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("%w: rank %d, want ≥ 1", ErrInvalidConfig, rank)
	}
	if len(u) == 0 || len(u) != len(v) || len(u)%rank != 0 {
		return nil, fmt.Errorf("%w: flat arrays of %d/%d values, want equal non-empty multiples of rank %d",
			ErrInvalidConfig, len(u), len(v), rank)
	}
	for k := range u {
		if !finite(u[k]) || !finite(v[k]) {
			return nil, fmt.Errorf("%w: non-finite coordinate at row %d", ErrInvalidConfig, k/rank)
		}
	}
	return &Snapshot{
		n:      len(u) / rank,
		rank:   rank,
		u:      u,
		v:      v,
		tau:    tau,
		metric: metric,
		steps:  steps,
	}, nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// N returns the node count.
func (sn *Snapshot) N() int { return sn.n }

// Dim returns r, the coordinate dimensionality.
func (sn *Snapshot) Dim() int { return sn.rank }

// Tau returns the classification threshold the coordinates were trained
// against.
func (sn *Snapshot) Tau() float64 { return sn.tau }

// Metric returns the measured quantity.
func (sn *Snapshot) Metric() Metric { return sn.metric }

// Steps returns the session's cumulative update count at materialization
// (0 for snapshots assembled with NewSnapshot) — a freshness stamp for
// serving loops that swap snapshots.
func (sn *Snapshot) Steps() int { return sn.steps }

// StoreShards returns the shard count P of the store this snapshot was
// materialized from, or 0 for assembled snapshots (NewSnapshot,
// NewSnapshotFlat), which have no store.
func (sn *Snapshot) StoreShards() int { return sn.shards }

// Versions returns a copy of the per-shard store version vector this
// snapshot was materialized at (nil for assembled snapshots). Together
// with Flat it is the input the replication tier captures its versioned
// state from.
func (sn *Snapshot) Versions() []uint64 {
	if sn.vers == nil {
		return nil
	}
	return append([]uint64(nil), sn.vers...)
}

// Flat returns copies of the flat row-major coordinate arrays (node i's
// rows at [i·rank, (i+1)·rank)) — the counterpart of NewSnapshotFlat for
// callers that replicate or persist coordinate state.
func (sn *Snapshot) Flat() (u, v []float64) {
	return append([]float64(nil), sn.u...), append([]float64(nil), sn.v...)
}

func (sn *Snapshot) check(i, j int) {
	if uint(i) >= uint(sn.n) || uint(j) >= uint(sn.n) {
		panic(fmt.Sprintf("dmfsgd: snapshot pair (%d,%d) out of range [0,%d)", i, j, sn.n))
	}
}

// Predict returns x̂ᵢⱼ = uᵢ·vⱼᵀ, the estimate of the path i → j. Larger
// means more likely good. Bit-identical to Session.Predict at the moment
// of materialization.
func (sn *Snapshot) Predict(i, j int) float64 {
	sn.check(i, j)
	r := sn.rank
	return vec.Dot(sn.u[i*r:(i+1)*r], sn.v[j*r:(j+1)*r])
}

// Classify returns the predicted class of the path i → j: the sign of
// Predict.
func (sn *Snapshot) Classify(i, j int) Class {
	return classify.FromValue(sn.Predict(i, j))
}

// PredictBatch fills scores[k] with the prediction for pairs[k]. scores
// may be nil (a new slice is allocated) or a caller-owned buffer of
// len(pairs) for allocation-free serving loops; it is returned either
// way. The batch is scored on the calling goroutine with zero
// synchronization — parallelism comes from calling PredictBatch on many
// goroutines, which scale linearly until memory bandwidth.
func (sn *Snapshot) PredictBatch(pairs []PathPair, scores []float64) []float64 {
	if scores == nil {
		scores = make([]float64, len(pairs))
	}
	if len(scores) != len(pairs) {
		panic(fmt.Sprintf("dmfsgd: PredictBatch scores length %d, want %d", len(scores), len(pairs)))
	}
	r := sn.rank
	for k, p := range pairs {
		sn.check(p.I, p.J)
		scores[k] = vec.Dot(sn.u[p.I*r:(p.I+1)*r], sn.v[p.J*r:(p.J+1)*r])
	}
	return scores
}

// Rank orders candidate peers of node i from most to least likely good —
// the §6.4 peer-selection primitive ("rank candidates by x̂ and pick the
// best"). It returns a new slice sorted by descending predicted score,
// ties broken by ascending node id so the order is deterministic.
// candidates is not modified.
func (sn *Snapshot) Rank(i int, candidates []int) []int {
	type scored struct {
		j int
		x float64
	}
	sn.check(i, i)
	order := make([]scored, len(candidates))
	r := sn.rank
	ui := sn.u[i*r : (i+1)*r]
	for k, j := range candidates {
		sn.check(i, j)
		order[k] = scored{j: j, x: vec.Dot(ui, sn.v[j*r:(j+1)*r])}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].x != order[b].x {
			return order[a].x > order[b].x
		}
		return order[a].j < order[b].j
	})
	out := make([]int, len(order))
	for k, s := range order {
		out[k] = s.j
	}
	return out
}
