package dmfsgd

import (
	"context"
	"fmt"
	"io"
	"time"

	"dmfsgd/internal/dataset"
	"dmfsgd/internal/multiclass"
)

// Dataset is a ground-truth pairwise performance matrix with metadata.
// Construct one with NewMeridianDataset, NewHarvardDataset,
// NewHPS3Dataset, LoadDataset, or dataset loaders.
//
// A Dataset is the *static* half of a session: topology, evaluation
// ground truth, default τ. What the nodes measure flows through the
// ingestion layer's Source seam — NewSession(ds, …) is the adapter
// wrapping a dataset in its canonical measurement source, and
// NewSessionFromSource accepts any stream (scenario-decorated sampling,
// NDJSON captures, custom generators) over the same dataset.
type Dataset = dataset.Dataset

// NewMeridianDataset generates the Meridian-like static RTT dataset with n
// nodes (0 = the original 2500).
func NewMeridianDataset(n int, seed int64) *Dataset {
	return dataset.Meridian(dataset.MeridianConfig{N: n, Seed: seed})
}

// NewHarvardDataset generates the Harvard-like dynamic RTT dataset: n
// nodes (0 = the original 226) plus a timestamped measurement trace of the
// given length (0 = 250,000).
func NewHarvardDataset(n, measurements int, seed int64) *Dataset {
	return dataset.Harvard(dataset.HarvardConfig{N: n, Measurements: measurements, Seed: seed})
}

// NewHPS3Dataset generates the HP-S3-like available-bandwidth dataset with
// n nodes (0 = the original 231).
func NewHPS3Dataset(n int, seed int64) *Dataset {
	return dataset.HPS3(dataset.HPS3Config{N: n, Seed: seed})
}

// LoadDataset parses a whitespace-separated matrix (one row per line,
// "nan" or negative values marking missing entries) as a dataset of the
// given metric.
func LoadDataset(r io.Reader, name string, metric Metric) (*Dataset, error) {
	m, err := dataset.ReadMatrix(r)
	if err != nil {
		return nil, err
	}
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("dmfsgd: matrix must be square, got %dx%d", m.Rows(), m.Cols())
	}
	return dataset.FromMatrix(name, metric, m, 0), nil
}

// SimulationConfig parameterizes Simulate. Zero values take the paper's
// defaults.
//
// Deprecated: use NewSession with functional options (WithRank, WithTau,
// WithShards, …), which distinguish explicit zeros from "unset".
type SimulationConfig struct {
	// Config carries the SGD hyper-parameters.
	Config Config
	// K is the neighbor count (0 = dataset default: 10, or 32 for
	// thousand-node sets).
	K int
	// Tau is the classification threshold (0 = dataset median).
	Tau float64
	// Shards partitions the coordinate store for RunEpochs (0 = 1).
	// Sequential Run results are identical for every value.
	Shards int
	// Workers bounds the goroutines used by RunEpochs and evaluation
	// (0 = GOMAXPROCS). Results are identical for every value.
	Workers int
	// Seed drives the simulation (neighbor choice, probe order, init).
	Seed int64
}

// settings maps the legacy zero-value-is-default semantics onto the
// resolved settings representation NewSession uses. Fixed-seed runs
// through the shim are bit-identical to the historical Simulate because
// the resulting driver construction is the same call with the same
// arguments.
func (cfg SimulationConfig) settings() settings {
	c := cfg.Config.normalize()
	return settings{
		rank:         c.Rank,
		learningRate: c.LearningRate,
		lambda:       c.Lambda,
		loss:         c.Loss,
		tau:          cfg.Tau,
		tauSet:       cfg.Tau != 0,
		k:            cfg.K,
		shards:       cfg.Shards,
		workers:      cfg.Workers,
		seed:         cfg.Seed,
	}
}

// Simulation is a deterministic sequential run of the decentralized
// protocol against a dataset: the experiment harness of the paper.
//
// Deprecated: Simulation is a thin shim over Session, kept so historical
// experiment code keeps compiling and reproducing its tables bit for
// bit. New code should use NewSession directly (the Session method set
// is a superset: contexts, snapshots, telemetry).
type Simulation struct {
	sess *Session
}

// Simulate builds a simulation over ds.
//
// Deprecated: use NewSession.
func Simulate(ds *Dataset, cfg SimulationConfig) (*Simulation, error) {
	sess, err := newSession(ds, cfg.settings())
	if err != nil {
		return nil, err
	}
	return &Simulation{sess: sess}, nil
}

// Session returns the Session backing this shim — the migration path to
// the context-aware API.
func (s *Simulation) Session() *Session { return s.sess }

// Run consumes measurements in random order (static datasets). total = 0
// uses the paper's convergence budget of 20·k measurements per node.
// Datasets with a dynamic trace replay it in time order instead.
func (s *Simulation) Run(total int) {
	// Background context: never cancelled, so the error is always nil
	// (a trace dataset can only end early by exhausting the trace,
	// which Run historically tolerated too).
	_ = s.sess.Run(context.Background(), total)
}

// RunEpochs trains with the sharded parallel engine instead of the
// sequential measurement stream: epochs sweeps in which every node probes
// probesPerNode random neighbors, executed concurrently across the
// configured shards. Deterministic for a fixed seed regardless of shard
// count. Datasets with a dynamic trace train on per-epoch measurement
// groups of the trace (n·probesPerNode time-ordered measurements per
// epoch); see Session.RunEpochs. Returns the number of successful
// updates.
func (s *Simulation) RunEpochs(epochs, probesPerNode int) (int, error) {
	return s.sess.RunEpochs(context.Background(), epochs, probesPerNode)
}

// Tau returns the classification threshold in effect.
func (s *Simulation) Tau() float64 { return s.sess.Tau() }

// AUC evaluates prediction quality over the never-measured pairs.
func (s *Simulation) AUC() float64 {
	auc, _ := s.sess.AUC(context.Background(), 0)
	return auc
}

// Confusion returns the sign-rule confusion matrix over the test pairs.
func (s *Simulation) Confusion() Confusion {
	c, _ := s.sess.Confusion(context.Background())
	return c
}

// ROC returns the receiver operating characteristic over the test pairs,
// from (0,0) to (1,1) as the discrimination threshold τc sweeps the
// prediction range (§6.1).
func (s *Simulation) ROC() []ROCPoint {
	roc, _ := s.sess.ROC(context.Background())
	return roc
}

// PrecisionRecall returns the precision-recall curve over the test pairs.
func (s *Simulation) PrecisionRecall() []PRPoint {
	pr, _ := s.sess.PrecisionRecall(context.Background())
	return pr
}

// Predict returns x̂ᵢⱼ for any node pair.
func (s *Simulation) Predict(i, j int) float64 { return s.sess.Predict(i, j) }

// Neighbors returns node i's neighbor set.
func (s *Simulation) Neighbors(i int) []int { return s.sess.Neighbors(i) }

// SelectPeers evaluates class-based peer selection over random peer sets
// of the given size (disjoint from neighbor sets), returning the mean
// stretch and the unsatisfied-node fraction of §6.4.
func (s *Simulation) SelectPeers(peerSetSize int, seed int64) (stretch, unsatisfied float64) {
	return s.sess.SelectPeers(peerSetSize, seed)
}

// MulticlassResult is the outcome of a multiclass simulation.
type MulticlassResult struct {
	// Exact is the exact-class accuracy; WithinOne allows one level of
	// error; MAE is the mean absolute class error.
	Exact, WithinOne, MAE float64
	// Confusion[t][p] counts test pairs of true class t predicted p
	// (class 0 = best).
	Confusion [][]int
}

// SimulateMulticlass trains the multiclass extension (§7 future work of
// the paper): len(thresholds)+1 ordered performance classes separated by
// the given thresholds (strictest first: ascending for RTT, descending
// for ABW). Evaluation is over the unmeasured pairs, like the binary
// experiments. Invalid thresholds or hyper-parameters are reported with
// an error wrapping ErrInvalidConfig.
func SimulateMulticlass(ds *Dataset, thresholds []float64, cfg Config, seed int64) (MulticlassResult, error) {
	mcfg := multiclass.Config{
		SGD:        cfg.sgdConfig(),
		Thresholds: thresholds,
		Metric:     ds.Metric,
	}
	res, err := multiclass.RunSim(ds, mcfg, ds.DefaultK, 20, seed)
	if err != nil {
		return MulticlassResult{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return MulticlassResult{
		Exact:     res.Accuracy.Exact,
		WithinOne: res.Accuracy.WithinOne,
		MAE:       res.Accuracy.MAE,
		Confusion: res.Confusion,
	}, nil
}

// SwarmConfig parameterizes a live concurrent deployment.
//
// Deprecated: use NewSession with WithLive and functional options.
type SwarmConfig struct {
	// Config carries the SGD hyper-parameters.
	Config Config
	// K is the neighbor count (0 = dataset default).
	K int
	// Tau is the classification threshold (0 = dataset median).
	Tau float64
	// ProbeInterval is each node's probing period (0 = 1ms).
	ProbeInterval time.Duration
	// MeasurementNoise models imperfect tools (0 = exact).
	MeasurementNoise float64
	// DropRate / DupRate inject transport failures.
	DropRate, DupRate float64
	// Shards partitions the swarm-wide coordinate store (0 = a default
	// sized to keep shard-lock contention low).
	Shards int
	// Workers bounds the goroutines used by evaluation (0 = GOMAXPROCS).
	Workers int
	// Seed drives all randomness.
	Seed int64
}

// settings maps the legacy swarm config onto the resolved settings
// representation, preserving its zero-value defaults.
func (cfg SwarmConfig) settings() settings {
	c := cfg.Config.normalize()
	return settings{
		rank:          c.Rank,
		learningRate:  c.LearningRate,
		lambda:        c.Lambda,
		loss:          c.Loss,
		tau:           cfg.Tau,
		tauSet:        cfg.Tau != 0,
		k:             cfg.K,
		shards:        cfg.Shards,
		workers:       cfg.Workers,
		seed:          cfg.Seed,
		live:          true,
		probeInterval: cfg.ProbeInterval,
		noise:         cfg.MeasurementNoise,
		dropRate:      cfg.DropRate,
		dupRate:       cfg.DupRate,
	}
}

// Swarm is a running set of concurrent DMFSGD nodes exchanging real
// protocol messages over an in-memory transport, measured against
// dataset-backed oracles. Stop it when done.
//
// Deprecated: Swarm is a thin shim over a live Session (NewSession with
// WithLive), kept for compatibility.
type Swarm struct {
	sess *Session
}

// StartSwarm builds and starts a swarm over ds.
//
// Deprecated: use NewSession with WithLive.
func StartSwarm(ds *Dataset, cfg SwarmConfig) (*Swarm, error) {
	sess, err := newSession(ds, cfg.settings())
	if err != nil {
		return nil, err
	}
	return &Swarm{sess: sess}, nil
}

// Session returns the live Session backing this shim.
func (s *Swarm) Session() *Session { return s.sess }

// AUC evaluates the swarm's current prediction quality (0 = all test
// pairs).
func (s *Swarm) AUC(maxPairs int) float64 {
	auc, _ := s.sess.AUC(context.Background(), maxPairs)
	return auc
}

// Updates returns the total number of coordinate updates so far.
func (s *Swarm) Updates() int { return s.sess.Steps() }

// Stop shuts all nodes down.
func (s *Swarm) Stop() { s.sess.Close() }
