// Bandwidth classes without bandwidth measurements: the §3.2 insight.
//
// Estimating available bandwidth (ABW) precisely is expensive — long UDP
// trains, repeated runs. But answering "is the ABW above τ?" needs only
// ONE train sent at rate τ: congestion observed means "no". This example
// drives Algorithm 2 of the paper at the application level through the
// embeddable Node API: every node keeps two small vectors, probes a few
// random neighbors with binary trains, and afterwards the application
// gathers all coordinates into an immutable Snapshot and predicts the
// class of every never-probed pair in one lock-free batch.
//
//	go run ./examples/bandwidth
package main

import (
	"fmt"
	"math/rand"

	"dmfsgd"
)

func main() {
	// Ground truth: a 120-host network whose pairwise ABW follows a
	// capacity-weighted tree (bottlenecks shared between paths).
	ds := dmfsgd.NewHPS3Dataset(120, 11)
	tau := ds.Median()
	n := ds.N()
	fmt.Printf("network: %d hosts, probe rate tau = %.1f Mbps (median ABW)\n", n, tau)

	// One embeddable Node per host: this is all the state DMFSGD needs.
	// NewConfig builds the hyper-parameters from the same options a
	// Session takes (defaults here).
	cfg, err := dmfsgd.NewConfig()
	if err != nil {
		panic(err)
	}
	nodes := make([]*dmfsgd.Node, n)
	for i := range nodes {
		node, err := dmfsgd.NewNode(cfg, int64(i))
		if err != nil {
			panic(err)
		}
		nodes[i] = node
	}

	// Each host picks k random neighbors.
	const k = 10
	rng := rand.New(rand.NewSource(11))
	neighbors := make([][]int, n)
	for i := range neighbors {
		for len(neighbors[i]) < k {
			j := rng.Intn(n)
			if j != i {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}

	// The probe loop of Algorithm 2. sendTrain simulates one pathload-
	// style UDP train: the *target* observes whether it congests.
	sendTrain := func(sender, target int, rate float64) (dmfsgd.Class, bool) {
		if ds.Matrix.IsMissing(sender, target) {
			return dmfsgd.Bad, false // unmeasurable pair (dataset hole)
		}
		return dmfsgd.ClassOf(dmfsgd.ABW, ds.Matrix.At(sender, target), rate), true
	}
	probes := 20 * k * n
	for step := 0; step < probes; step++ {
		i := rng.Intn(n)
		j := neighbors[i][rng.Intn(k)]
		class, ok := sendTrain(i, j, tau)
		if !ok {
			continue
		}
		// Algorithm 2: the target j updates v_j with the sender's u_i and
		// replies with (class, v_j as it was before the update); the
		// sender then updates u_i.
		vPre := nodes[j].V()
		nodes[j].ObserveABWAsTarget(nodes[i].U(), class)
		nodes[i].ObserveABWAsSender(vPre, class)
	}
	fmt.Printf("sent %d binary trains (%.1f%% of full-mesh precise measurement cost)\n",
		probes, 100*float64(k)/float64(n-1))

	// Gather every node's coordinates into one immutable Snapshot — the
	// serving view an operator would export (cmd/dmfserve serves exactly
	// this over HTTP).
	us := make([][]float64, n)
	vs := make([][]float64, n)
	for i, node := range nodes {
		us[i], vs[i] = node.U(), node.V()
	}
	snap, err := dmfsgd.NewSnapshot(dmfsgd.ABW, tau, us, vs)
	if err != nil {
		panic(err)
	}

	// Evaluate on pairs outside every neighbor set, in one batch.
	isNeighbor := func(i, j int) bool {
		for _, p := range neighbors[i] {
			if p == j {
				return true
			}
		}
		return false
	}
	var pairs []dmfsgd.PathPair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || isNeighbor(i, j) || ds.Matrix.IsMissing(i, j) {
				continue
			}
			pairs = append(pairs, dmfsgd.PathPair{I: i, J: j})
		}
	}
	scores := snap.PredictBatch(pairs, nil)
	var correct int
	for idx, p := range pairs {
		if dmfsgd.ClassOfScore(scores[idx]) == dmfsgd.ClassOf(dmfsgd.ABW, ds.Matrix.At(p.I, p.J), tau) {
			correct++
		}
	}
	fmt.Printf("\npredicted classes for %d never-probed pairs\n", len(pairs))
	fmt.Printf("accuracy: %.1f%%\n", 100*float64(correct)/float64(len(pairs)))
}
