// Churn + drift scenario: the streaming ingestion layer composed end to
// end. A Meridian-like network trains from a measurement Source — the
// classic random probe schedule — decorated with node churn (a third of
// the nodes start flapping on/off partway through) and metric drift
// (the paths of a different third slowly degrade while the evaluation
// ground truth stays put). The run reports AUC before the scenario
// kicks in and again after training through it, showing how much an
// evolving network costs the predictor at equal budget.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"

	"dmfsgd"
)

func main() {
	const seed = 11
	ds := dmfsgd.NewMeridianDataset(200, seed)
	k := ds.DefaultK
	fmt.Printf("dataset: %d nodes, k=%d, median RTT %.1f ms\n", ds.N(), k, ds.Median())

	// The full budget is the paper's 20·k measurements per node. Stream
	// time for a matrix source advances one unit per probing round
	// (n measurements), so the run spans 20·k rounds and the scenario
	// switches on exactly halfway.
	budget := 20 * k * ds.N()
	rounds := float64(20 * k)
	churnStart := rounds / 2

	src, err := dmfsgd.NewMatrixSource(ds, k, seed)
	if err != nil {
		panic(err)
	}
	scenario := dmfsgd.WithDrift(
		dmfsgd.WithChurn(src, dmfsgd.ChurnConfig{
			Start:    churnStart,
			MeanUp:   rounds / 10,
			MeanDown: rounds / 10,
			Fraction: 0.33,
			Seed:     seed + 1,
		}),
		dmfsgd.DriftConfig{
			Rate:     3 / rounds, // ≈ 4.5× inflation by the end of the run
			Start:    churnStart,
			Fraction: 0.33,
			Seed:     seed + 2,
		})

	// The session owns topology, τ and evaluation; the decorated source
	// owns what the nodes measure. The inner MatrixSource binds to the
	// session's probe schedule, so before churnStart the stream is
	// exactly the clean sequential driver.
	ctx := context.Background()
	sess, err := dmfsgd.NewSessionFromSource(ds, scenario,
		dmfsgd.WithK(k), dmfsgd.WithSeed(seed))
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	// First half: the network is healthy.
	if err := sess.Run(ctx, budget/2); err != nil {
		panic(err)
	}
	before, err := sess.AUC(ctx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAUC after clean half (%6d measurements): %.3f\n", sess.Steps(), before)

	// Second half: churning nodes vanish from the stream for exponential
	// off-periods (their coordinates go stale) and drifting paths report
	// inflated RTTs (labels near τ flip against the fixed ground truth).
	if err := sess.Run(ctx, budget/2); err != nil {
		panic(err)
	}
	after, err := sess.AUC(ctx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("AUC after churn+drift (%6d measurements): %.3f\n", sess.Steps(), after)
	fmt.Printf("\nscenario cost: %.3f AUC (churn starves a third of the nodes,\n", before-after)
	fmt.Println("drift turns another third's labels into moving targets)")
}
