// Quickstart: generate a synthetic wide-area RTT dataset, run the
// decentralized class prediction protocol with the paper's default
// parameters, and inspect the resulting accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"dmfsgd"
)

func main() {
	// A 200-node Meridian-like network: clustered wide-area RTTs.
	ds := dmfsgd.NewMeridianDataset(200, 42)
	tau := ds.Median()
	fmt.Printf("dataset: %d nodes, median RTT %.1f ms (tau)\n", ds.N(), tau)

	// Each node picks k random neighbors and only ever measures those:
	// k·n of the n·(n−1) paths. Everything else is predicted.
	sim, err := dmfsgd.Simulate(ds, dmfsgd.SimulationConfig{Seed: 42})
	if err != nil {
		panic(err)
	}
	measured := ds.DefaultK * ds.N()
	total := ds.N() * (ds.N() - 1)
	fmt.Printf("measuring %d of %d paths (%.1f%%), predicting the rest\n",
		measured, total, 100*float64(measured)/float64(total))

	// Train with the paper's convergence budget (20·k measurements per
	// node on average).
	sim.Run(0)

	// How well do the predicted classes match reality on the ~98% of
	// paths that were never measured?
	fmt.Printf("\nAUC over unmeasured paths: %.3f\n", sim.AUC())
	c := sim.Confusion()
	fmt.Printf("accuracy (sign rule):      %.1f%%\n", 100*c.Accuracy())
	fmt.Printf("            predicted good   predicted bad\n")
	fmt.Printf("actual good      %5.1f%%          %5.1f%%\n", 100*c.TPR(), 100*c.FNR())
	fmt.Printf("actual bad       %5.1f%%          %5.1f%%\n", 100*c.FPR(), 100*c.TNR())

	// Individual predictions: positive score = "good" (RTT under tau).
	fmt.Println("\nsample predictions (path: score -> class | truth):")
	for _, pair := range [][2]int{{0, 50}, {10, 150}, {42, 7}, {199, 3}} {
		i, j := pair[0], pair[1]
		score := sim.Predict(i, j)
		pred := "bad"
		if score > 0 {
			pred = "good"
		}
		truth := "bad"
		if ds.Matrix.At(i, j) <= tau {
			truth = "good"
		}
		fmt.Printf("  %3d->%3d: %+6.2f -> %-4s | truth: %-4s (%.1f ms)\n",
			i, j, score, pred, truth, ds.Matrix.At(i, j))
	}
}
