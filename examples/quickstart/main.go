// Quickstart: generate a synthetic wide-area RTT dataset, train the
// decentralized class prediction protocol through the Session API with
// the paper's default parameters, and serve predictions from an
// immutable Snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"dmfsgd"
)

func main() {
	// A 200-node Meridian-like network: clustered wide-area RTTs.
	ds := dmfsgd.NewMeridianDataset(200, 42)
	tau := ds.Median()
	fmt.Printf("dataset: %d nodes, median RTT %.1f ms (tau)\n", ds.N(), tau)

	// Each node picks k random neighbors and only ever measures those:
	// k·n of the n·(n−1) paths. Everything else is predicted.
	ctx := context.Background()
	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(42))
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	measured := ds.DefaultK * ds.N()
	total := ds.N() * (ds.N() - 1)
	fmt.Printf("measuring %d of %d paths (%.1f%%), predicting the rest\n",
		measured, total, 100*float64(measured)/float64(total))

	// Train with the paper's convergence budget (20·k measurements per
	// node on average). The context cancels cleanly mid-run if needed.
	if err := sess.Run(ctx, 0); err != nil {
		panic(err)
	}

	// How well do the predicted classes match reality on the ~98% of
	// paths that were never measured?
	auc, err := sess.AUC(ctx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nAUC over unmeasured paths: %.3f\n", auc)
	c, err := sess.Confusion(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("accuracy (sign rule):      %.1f%%\n", 100*c.Accuracy())
	fmt.Printf("            predicted good   predicted bad\n")
	fmt.Printf("actual good      %5.1f%%          %5.1f%%\n", 100*c.TPR(), 100*c.FNR())
	fmt.Printf("actual bad       %5.1f%%          %5.1f%%\n", 100*c.FPR(), 100*c.TNR())

	// Serving: materialize an immutable Snapshot once and answer any
	// number of queries from it — lock-free, safe from any goroutine,
	// bit-identical to the live session at quiescence.
	snap := sess.Snapshot()
	pairs := []dmfsgd.PathPair{{I: 0, J: 50}, {I: 10, J: 150}, {I: 42, J: 7}, {I: 199, J: 3}}
	scores := snap.PredictBatch(pairs, nil)
	fmt.Println("\nsample predictions (path: score -> class | truth):")
	for k, p := range pairs {
		pred := dmfsgd.ClassOfScore(scores[k]).String()
		truth := "bad"
		if ds.Matrix.At(p.I, p.J) <= tau {
			truth = "good"
		}
		fmt.Printf("  %3d->%3d: %+6.2f -> %-4s | truth: %-4s (%.1f ms)\n",
			p.I, p.J, scores[k], pred, truth, ds.Matrix.At(p.I, p.J))
	}
}
