// Peer selection: the §6.4 scenario. A P2P streaming application must
// pick, for each node, one peer to download from among m random
// candidates — using only predicted performance. This example compares
// random choice against class-based DMFSGD selection and reports the two
// criteria from the paper: optimality (stretch) and satisfaction
// (fraction of nodes stuck with a "bad" peer while a "good" one existed).
// It finishes with the serving-side primitive: Snapshot.Rank, which
// orders a candidate set best-first from the frozen coordinates.
//
//	go run ./examples/peerselection
package main

import (
	"context"
	"fmt"
	"math/rand"

	"dmfsgd"
)

func main() {
	ds := dmfsgd.NewMeridianDataset(250, 7)
	tau := ds.Median()
	fmt.Printf("P2P network: %d nodes, a peer is 'good' when RTT <= %.1f ms\n\n", ds.N(), tau)

	ctx := context.Background()
	sess, err := dmfsgd.NewSession(ds, dmfsgd.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer sess.Close()
	if err := sess.Run(ctx, 0); err != nil {
		panic(err)
	}
	auc, err := sess.AUC(ctx, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trained: AUC %.3f over unmeasured paths\n\n", auc)

	fmt.Println("peers  random-stretch  dmfsgd-stretch  random-unsat  dmfsgd-unsat")
	for _, m := range []int{10, 20, 40, 60} {
		stretch, unsat := sess.SelectPeers(m, int64(m))
		rndStretch, rndUnsat := randomBaseline(ds, tau, m, int64(m))
		fmt.Printf("%5d  %14.2f  %14.2f  %11.1f%%  %11.1f%%\n",
			m, rndStretch, stretch, 100*rndUnsat, 100*unsat)
	}
	fmt.Println("\nstretch = chosen RTT / best available RTT (1.0 is optimal)")
	fmt.Println("unsat   = nodes that picked a bad peer although a good one existed")

	// The same decision as a serving query: freeze the coordinates and
	// rank one node's candidates, best predicted peer first.
	snap := sess.Snapshot()
	node := 0
	candidates := []int{17, 42, 99, 130, 200}
	ranked := snap.Rank(node, candidates)
	fmt.Printf("\nsnapshot ranking for node %d over %v:\n", node, candidates)
	for pos, j := range ranked {
		fmt.Printf("  #%d: node %3d  (score %+.2f, true RTT %.1f ms)\n",
			pos+1, j, snap.Predict(node, j), ds.Matrix.At(node, j))
	}
}

// randomBaseline evaluates uniform-random peer choice over fresh random
// peer sets, using only the public dataset surface.
func randomBaseline(ds *dmfsgd.Dataset, tau float64, m int, seed int64) (stretch, unsat float64) {
	rng := rand.New(rand.NewSource(seed))
	n := ds.N()
	var stretchSum float64
	var stretchN, unsatN, satN int
	for i := 0; i < n; i++ {
		// Sample m distinct candidates != i.
		seen := map[int]bool{i: true}
		var set []int
		for len(set) < m && len(set) < n-1 {
			j := rng.Intn(n)
			if !seen[j] {
				seen[j] = true
				set = append(set, j)
			}
		}
		pick := set[rng.Intn(len(set))]
		best := set[0]
		hasGood := false
		for _, p := range set {
			if ds.Matrix.At(i, p) < ds.Matrix.At(i, best) {
				best = p
			}
			if ds.Matrix.At(i, p) <= tau {
				hasGood = true
			}
		}
		stretchSum += ds.Matrix.At(i, pick) / ds.Matrix.At(i, best)
		stretchN++
		if hasGood {
			satN++
			if ds.Matrix.At(i, pick) > tau {
				unsatN++
			}
		}
	}
	return stretchSum / float64(stretchN), float64(unsatN) / float64(satN)
}
