// Live swarm: the concurrent runtime in action. Eighty goroutine nodes
// exchange real protocol messages (probe requests and replies carrying
// coordinates) over an in-memory datagram transport with 5% packet loss,
// while this program watches the swarm-wide prediction quality converge.
//
// The same node implementation runs over UDP across processes — see
// cmd/dmfnode for a multi-process deployment.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"time"

	"dmfsgd"
)

func main() {
	ds := dmfsgd.NewMeridianDataset(80, 3)
	fmt.Printf("starting %d concurrent nodes (k=%d neighbors each, 5%% packet loss)\n",
		ds.N(), ds.DefaultK)

	swarm, err := dmfsgd.StartSwarm(ds, dmfsgd.SwarmConfig{
		K:                16,
		ProbeInterval:    300 * time.Microsecond,
		MeasurementNoise: 0.05,
		DropRate:         0.05,
		Seed:             3,
	})
	if err != nil {
		panic(err)
	}
	defer swarm.Stop()

	fmt.Println("\n   time    updates      AUC (unmeasured pairs)")
	start := time.Now()
	for elapsed := time.Duration(0); elapsed < 3*time.Second; {
		time.Sleep(500 * time.Millisecond)
		elapsed = time.Since(start)
		fmt.Printf("  %5.1fs  %9d    %.3f\n",
			elapsed.Seconds(), swarm.Updates(), swarm.AUC(20000))
	}
	fmt.Println("\nnodes never shared a matrix — only O(rank) coordinates per probe.")
}
