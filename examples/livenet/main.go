// Live swarm: the concurrent runtime in action. Eighty goroutine nodes
// exchange real protocol messages (probe requests and replies carrying
// coordinates) over an in-memory datagram transport with 5% packet loss,
// while this program follows the swarm through the Session API: Run
// waits on an update budget under a deadline, Watch streams training
// telemetry, AUC checkpoints measure convergence, and a final lock-free
// Snapshot freezes the result for serving.
//
// The run is also captured through the ingestion layer: a SwarmSource
// taps every RTT the nodes measure, the capture is written as an NDJSON
// stream, and the same measurements are then replayed through a
// deterministic session (NewStreamSource) — twice, to show the replay
// is exactly reproducible where the live run never is.
//
// The same node implementation runs over UDP across processes — see
// cmd/dmfnode for a multi-process deployment.
//
//	go run ./examples/livenet
package main

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"dmfsgd"
)

func main() {
	ds := dmfsgd.NewMeridianDataset(80, 3)
	fmt.Printf("starting %d concurrent nodes (k=16 neighbors each, 5%% packet loss)\n", ds.N())

	sess, err := dmfsgd.NewSession(ds,
		dmfsgd.WithLive(),
		dmfsgd.WithK(16),
		dmfsgd.WithProbeInterval(300*time.Microsecond),
		dmfsgd.WithMeasurementNoise(0.05),
		dmfsgd.WithPacketLoss(0.05, 0),
		dmfsgd.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	// Train for up to 3 seconds (or 2M updates, whichever comes first):
	// the swarm probes on its own schedule, Run just waits on the budget
	// and feeds the Watch stream.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// Tap the measurement stream while the swarm trains: every RTT a
	// node measures lands in the capture (lossy if we fell behind — the
	// tap never stalls a node).
	tap, err := dmfsgd.NewSwarmSource(sess, 1<<16)
	if err != nil {
		panic(err)
	}
	defer tap.Close()
	var captured []dmfsgd.Measurement
	capDone := make(chan struct{})
	go func() {
		defer close(capDone)
		buf := make([]dmfsgd.Measurement, 4096)
		for {
			n, err := tap.NextBatch(ctx, buf)
			captured = append(captured, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()

	watch := sess.Watch(ctx)
	go func() { _ = sess.Run(ctx, 2<<20) }()

	fmt.Println("\n   time    updates      AUC (unmeasured pairs)")
	start := time.Now()
	next := start.Add(500 * time.Millisecond)
	for p := range watch { // closes when ctx expires
		if time.Now().Before(next) {
			continue
		}
		next = next.Add(500 * time.Millisecond)
		auc, err := sess.AUC(ctx, 20000)
		if err != nil {
			break // deadline hit mid-evaluation
		}
		fmt.Printf("  %5.1fs  %9d    %.3f\n", time.Since(start).Seconds(), p.Steps, auc)
	}

	// Freeze the coordinates for serving: the snapshot is consistent
	// per shard, immutable, and needs no locks however many goroutines
	// read it — the swarm keeps training underneath, unaffected.
	snap := sess.Snapshot()
	fmt.Printf("\nsnapshot at %d updates: node 0 -> 40 predicted %s\n",
		snap.Steps(), snap.Classify(0, 40))
	fmt.Println("nodes never shared a matrix — only O(rank) coordinates per probe.")

	// Replay: persist the capture as NDJSON and train two fresh
	// deterministic sessions from it. The live run above is racy by
	// nature; its captured stream is not — both replays land on the
	// same coordinates, bit for bit.
	<-capDone
	var ndjson bytes.Buffer
	if err := dmfsgd.WriteMeasurements(&ndjson, captured); err != nil {
		panic(err)
	}
	fmt.Printf("\ncaptured %d measurements (%d lost to backpressure, %.1f MB as NDJSON)\n",
		len(captured), tap.Dropped(), float64(ndjson.Len())/1e6)

	replay := func() float64 {
		rs, err := dmfsgd.NewSessionFromSource(ds,
			dmfsgd.NewStreamSource(bytes.NewReader(ndjson.Bytes())),
			dmfsgd.WithK(16), dmfsgd.WithSeed(3))
		if err != nil {
			panic(err)
		}
		defer rs.Close()
		// Drain the whole capture (the budget is an upper bound; a
		// finite stream ends the run at EOF).
		if err := rs.Run(context.Background(), len(captured)); err != nil {
			panic(err)
		}
		auc, err := rs.AUC(context.Background(), 0)
		if err != nil {
			panic(err)
		}
		return auc
	}
	a, b := replay(), replay()
	fmt.Printf("replayed deterministically: AUC %.6f, and again: %.6f (identical: %v)\n",
		a, b, a == b)
}
