// Live swarm: the concurrent runtime in action. Eighty goroutine nodes
// exchange real protocol messages (probe requests and replies carrying
// coordinates) over an in-memory datagram transport with 5% packet loss,
// while this program follows the swarm through the Session API: Run
// waits on an update budget under a deadline, Watch streams training
// telemetry, AUC checkpoints measure convergence, and a final lock-free
// Snapshot freezes the result for serving.
//
// The same node implementation runs over UDP across processes — see
// cmd/dmfnode for a multi-process deployment.
//
//	go run ./examples/livenet
package main

import (
	"context"
	"fmt"
	"time"

	"dmfsgd"
)

func main() {
	ds := dmfsgd.NewMeridianDataset(80, 3)
	fmt.Printf("starting %d concurrent nodes (k=16 neighbors each, 5%% packet loss)\n", ds.N())

	sess, err := dmfsgd.NewSession(ds,
		dmfsgd.WithLive(),
		dmfsgd.WithK(16),
		dmfsgd.WithProbeInterval(300*time.Microsecond),
		dmfsgd.WithMeasurementNoise(0.05),
		dmfsgd.WithPacketLoss(0.05, 0),
		dmfsgd.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	// Train for up to 3 seconds (or 2M updates, whichever comes first):
	// the swarm probes on its own schedule, Run just waits on the budget
	// and feeds the Watch stream.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	watch := sess.Watch(ctx)
	go func() { _ = sess.Run(ctx, 2<<20) }()

	fmt.Println("\n   time    updates      AUC (unmeasured pairs)")
	start := time.Now()
	next := start.Add(500 * time.Millisecond)
	for p := range watch { // closes when ctx expires
		if time.Now().Before(next) {
			continue
		}
		next = next.Add(500 * time.Millisecond)
		auc, err := sess.AUC(ctx, 20000)
		if err != nil {
			break // deadline hit mid-evaluation
		}
		fmt.Printf("  %5.1fs  %9d    %.3f\n", time.Since(start).Seconds(), p.Steps, auc)
	}

	// Freeze the coordinates for serving: the snapshot is consistent
	// per shard, immutable, and needs no locks however many goroutines
	// read it — the swarm keeps training underneath, unaffected.
	snap := sess.Snapshot()
	fmt.Printf("\nsnapshot at %d updates: node 0 -> 40 predicted %s\n",
		snap.Steps(), snap.Classify(0, 40))
	fmt.Println("nodes never shared a matrix — only O(rank) coordinates per probe.")
}
