// Multiclass rating: the paper's §7 future-work extension. Instead of
// "good"/"bad", paths are rated into four ordered classes — the kind of
// labels a video-streaming application maps to quality tiers (4K / HD /
// SD / audio-only). Each class boundary is one binary DMFSGD problem;
// nodes carry one coordinate pair per boundary and stay fully
// decentralized. Misconfiguration (e.g. unordered thresholds) is
// reported through the package's typed errors.
//
//	go run ./examples/multiclass
package main

import (
	"errors"
	"fmt"

	"dmfsgd"
)

func main() {
	ds := dmfsgd.NewMeridianDataset(200, 5)
	// Class boundaries from the dataset quartiles: <Q1 excellent,
	// <median good, <Q3 fair, else poor.
	q1 := ds.TauForGoodPortion(0.25)
	q2 := ds.TauForGoodPortion(0.50)
	q3 := ds.TauForGoodPortion(0.75)
	names := []string{"excellent", "good", "fair", "poor"}
	fmt.Printf("rating %d-node network into 4 classes: <%.0fms / <%.0fms / <%.0fms / rest\n\n",
		ds.N(), q1, q2, q3)

	// Hyper-parameters through the same options a Session takes.
	cfg, err := dmfsgd.NewConfig(dmfsgd.WithLoss(dmfsgd.LossLogistic))
	if err != nil {
		panic(err)
	}

	// Thresholds must be ordered strictest-first; the package rejects
	// anything else with ErrInvalidConfig rather than training nonsense.
	if _, err := dmfsgd.SimulateMulticlass(ds, []float64{q3, q1}, cfg, 5); !errors.Is(err, dmfsgd.ErrInvalidConfig) {
		panic("unordered thresholds should be rejected")
	}

	res, err := dmfsgd.SimulateMulticlass(ds, []float64{q1, q2, q3}, cfg, 5)
	if err != nil {
		panic(err)
	}

	fmt.Printf("exact-class accuracy:   %.1f%%  (chance: 25%%)\n", 100*res.Exact)
	fmt.Printf("within-one accuracy:    %.1f%%\n", 100*res.WithinOne)
	fmt.Printf("mean absolute error:    %.2f classes\n\n", res.MAE)

	fmt.Println("confusion (rows = truth, cols = predicted):")
	fmt.Printf("%11s", "")
	for _, n := range names {
		fmt.Printf("%11s", n)
	}
	fmt.Println()
	for t, row := range res.Confusion {
		fmt.Printf("%11s", names[t])
		total := 0
		for _, c := range row {
			total += c
		}
		for _, c := range row {
			fmt.Printf("%10.1f%%", 100*float64(c)/float64(total))
		}
		fmt.Println()
	}
}
